"""Idealized memory endpoint used by the IDEAL reference system.

The IDEAL system of the paper (§III-A) connects the vector unit to "an
exclusive, idealized memory with one port per lane, serving data with ideal
packing, bandwidth, and latency".  This endpoint therefore serves any burst
at one full-width beat per cycle, with a fixed (small) latency, perfect
packing and no bank conflicts.  It gives the upper bound that the PACK
system is compared against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.axi.faults import BusFaultPlan, BusFaultSpec
from repro.axi.port import AxiPort
from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.errors import ProtocolError
from repro.mem.functional import (
    burst_fault_address,
    read_burst_payload,
    write_burst_payload,
)
from repro.mem.storage import MemoryStorage
from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.policy import DataPolicy
from repro.sim.stats import StatsRegistry


class IdealMemoryEndpoint(Component):
    """Serves AXI/AXI-Pack bursts at one fully packed beat per cycle.

    Under ``DataPolicy.ELIDE`` the endpoint never touches the backing
    storage: read beats carry empty payloads with the exact ``useful_bytes``
    geometry of FULL mode, and write bursts are consumed and acknowledged
    without applying their (absent) payloads.

    Error semantics: a burst touching any byte outside the storage — or one
    matched by an injected :class:`~repro.axi.faults.BusFaultSpec` — never
    moves data.  Reads deliver the full burst length as phantom beats
    (``useful_bytes=0``, ``resp=SLVERR``/``DECERR``); writes consume every
    W beat, discard the payload and answer an error B.  The range check is
    functional (element addresses only), so FULL and ELIDE agree on it.
    """

    def __init__(
        self,
        name: str,
        port: AxiPort,
        storage: MemoryStorage,
        latency: int = 2,
        stats: Optional[StatsRegistry] = None,
        data_policy: DataPolicy = DataPolicy.FULL,
        bus_faults: Optional[BusFaultPlan] = None,
    ) -> None:
        super().__init__(name)
        self.port = port
        self.storage = storage
        self.latency = max(1, latency)
        self.stats = stats if stats is not None else StatsRegistry()
        self.data_policy = data_policy
        self._elide = data_policy.elides_data
        self._fault_plan = (
            bus_faults if bus_faults is not None
            and bus_faults.touches_port(name) else None
        )
        # Active read: [request, payload bytes | None, next beat index,
        # ready cycle, per-beat useful-byte table (ELIDE/error only), resp]
        self._read: Optional[list] = None
        self._read_backlog: Deque[BusRequest] = deque()
        # Active write: [request, collected payload bytes, beats received,
        # resp, lost?, stall cycles, B-ready cycle | None]
        self._write: Optional[list] = None

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        self._serve_reads(cycle)
        self._serve_writes(cycle)
        # Every transition except a burst waiting out its latency (or an
        # injected response stall) is gated on port-queue activity (AR/AW/W
        # arrivals, R/B back-pressure), which re-wakes us via the
        # subscriptions; streaming reads self-wake through their own R pushes.
        wake = IDLE
        if self._read is not None and self._read[3] > cycle:
            wake = self._read[3]
        if self._write is not None:
            b_ready = self._write[6]
            if b_ready is not None and b_ready > cycle and b_ready < wake:
                wake = b_ready
        return wake

    def wake_queues(self):
        return self.port.all_queues()

    # ---------------------------------------------------------------- faults
    def _injected_fault(self, request: BusRequest) -> Optional[BusFaultSpec]:
        """The plan's fault for this burst, if any (keyed by name/txn/addr)."""
        if self._fault_plan is None:
            return None
        return self._fault_plan.first_match(
            self.name, request.txn_id, request.addr
        )

    def _burst_resp(self, request: BusRequest) -> Resp:
        """SLVERR for a burst touching any byte outside the storage."""
        if burst_fault_address(self.storage, request) is not None:
            return Resp.SLVERR
        return Resp.OKAY

    # ------------------------------------------------------------------ reads
    def _serve_reads(self, cycle: int) -> None:
        # Accept new read bursts eagerly so back-to-back bursts stream with no
        # bubble — the IDEAL memory has perfect bandwidth and latency.
        while self.port.ar.can_pop() and len(self._read_backlog) < 8:
            self._read_backlog.append(self.port.ar.pop())
        while self._read is None and self._read_backlog:
            # Loop: a lost-response burst is swallowed whole, and the next
            # backlog entry must still start this cycle.
            self._start_read(self._read_backlog.popleft(), cycle)
        if self._read is None:
            return
        request, payload, beat_index, ready_cycle, usefuls, resp = self._read
        if cycle < ready_cycle or not self.port.r.can_push():
            return
        bus_bytes = request.bus_bytes
        start = beat_index * bus_bytes
        if payload is None:
            # Timing-only (or phantom error) beat: geometry without bytes,
            # from the per-burst useful-byte table precomputed at burst start.
            chunk = b""
            useful = usefuls[beat_index]
        else:
            chunk = payload[start : start + bus_bytes]
            useful = len(chunk)
        last = beat_index == request.num_beats - 1
        self.port.r.push(
            RBeat(
                txn_id=request.txn_id,
                data=chunk,
                useful_bytes=useful,
                last=last,
                resp=resp,
            )
        )
        self.stats.add("ideal.r_beats")
        self.stats.add("ideal.r_useful_bytes", useful)
        if last:
            self._read = None
            if self._read_backlog:
                # Start the next burst immediately; its data is ready the very
                # next cycle (single-cycle idealized latency between bursts).
                self._start_read(self._read_backlog.popleft(), cycle + 1 - self.latency)
        else:
            self._read[2] = beat_index + 1

    def _start_read(self, request: BusRequest, cycle: int) -> None:
        if request.is_write:
            raise ProtocolError("write request arrived on the AR channel")
        resp = self._burst_resp(request)
        stall = 0
        fault = self._injected_fault(request)
        if fault is not None:
            if fault.kind == "lost":
                return  # the burst vanishes: no R beats, ever
            if fault.kind == "stall":
                stall = fault.stall_cycles
            else:
                resp = fault.resp
        if resp is not Resp.OKAY:
            # Error burst: full burst length as phantom beats, no data read.
            payload = None
            usefuls = [0] * request.num_beats
        elif self._elide:
            # Batch geometry precompute: the whole burst's per-beat
            # useful-byte counts in one pass (they match the FULL-mode
            # payload slices exactly — a misaligned contiguous burst's
            # trailing beats can slice past the payload end, yielding empty
            # FULL-mode chunks, hence the clamp to zero).
            payload = None
            bus_bytes = request.bus_bytes
            payload_bytes = request.payload_bytes
            usefuls = [
                min(bus_bytes, max(0, payload_bytes - beat * bus_bytes))
                for beat in range(request.num_beats)
            ]
        else:
            payload = read_burst_payload(self.storage, request)
            usefuls = None
        self._read = [request, payload, 0, cycle + self.latency + stall,
                      usefuls, resp]

    # ----------------------------------------------------------------- writes
    def _serve_writes(self, cycle: int) -> None:
        if self._write is None and self.port.aw.can_pop():
            request = self.port.aw.pop()
            if not request.is_write:
                raise ProtocolError("read request arrived on the AW channel")
            resp = self._burst_resp(request)
            lost = False
            stall = 0
            fault = self._injected_fault(request)
            if fault is not None:
                if fault.kind == "lost":
                    lost = True  # W beats are still drained; B never comes
                elif fault.kind == "stall":
                    stall = fault.stall_cycles
                else:
                    resp = fault.resp
            self._write = [request, [], 0, resp, lost, stall, None]
        if self._write is None:
            return
        request, chunks, beats, resp, lost, stall, b_ready = self._write
        # Consume at most one W beat per cycle (one bus width of bandwidth).
        if beats < request.num_beats and self.port.w.can_pop():
            beat = self.port.w.pop()
            if not self._elide and resp is Resp.OKAY and not lost:
                data = beat.data
                if isinstance(data, (bytes, bytearray, memoryview)):
                    chunk = np.frombuffer(data, dtype=np.uint8)[: beat.useful_bytes]
                else:
                    chunk = np.asarray(data, dtype=np.uint8)[: beat.useful_bytes]
                chunks.append(chunk)
            beats += 1
            self._write[2] = beats
            self.stats.add("ideal.w_beats")
            self.stats.add("ideal.w_useful_bytes", beat.useful_bytes)
        if beats != request.num_beats:
            return
        if lost:
            # Every W beat is consumed, then the transaction vanishes: the
            # payload is dropped and no B response is ever sent.
            self._write = None
            return
        if b_ready is None:
            b_ready = cycle + stall
            self._write[6] = b_ready
        if cycle >= b_ready and self.port.b.can_push():
            if not self._elide and resp is Resp.OKAY:
                payload = np.concatenate(chunks)[: request.payload_bytes]
                write_burst_payload(self.storage, request, payload)
            self.port.b.push(BBeat(txn_id=request.txn_id, resp=resp))
            self._write = None

    # ------------------------------------------------------------------ state
    def busy(self) -> bool:
        return self._read is not None or self._write is not None or bool(self._read_backlog)

    def reset(self) -> None:
        self._read = None
        self._write = None
        self._read_backlog.clear()
