"""Banked on-chip memory substrate.

Models the memory side of the evaluation systems: a byte-addressable backing
store, the word-wide bank address mapping (power-of-two or prime bank
counts), the cycle-level multi-banked SRAM with its port-to-bank crossbar,
and an idealized memory endpoint used by the IDEAL reference system.
"""

from repro.mem.storage import MemoryStorage
from repro.mem.words import BankAddressMap, WordRequest, WordResponse
from repro.mem.banked import BankedMemory, BankedMemoryConfig
from repro.mem.ideal import IdealMemoryEndpoint

__all__ = [
    "MemoryStorage",
    "BankAddressMap",
    "WordRequest",
    "WordResponse",
    "BankedMemory",
    "BankedMemoryConfig",
    "IdealMemoryEndpoint",
]
