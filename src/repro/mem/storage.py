"""Byte-addressable backing store shared by all memory models.

The storage is purely functional (a flat numpy byte array); timing lives in
the bank/crossbar models layered on top.  Keeping data movement functional
lets every workload verify its results against a numpy reference, which is
how the test suite proves that packing, indirection and unpacking preserve
data end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import MemoryAccessError
from repro.utils.validation import check_positive


class MemoryStorage:
    """A flat, byte-addressable memory image.

    Parameters
    ----------
    size_bytes:
        Capacity of the modelled SRAM.  Accesses outside ``[0, size_bytes)``
        raise :class:`~repro.errors.MemoryAccessError` — silent wrap-around would
        mask workload address-generation bugs.
    """

    def __init__(self, size_bytes: int) -> None:
        self.size_bytes = check_positive("memory size", size_bytes)
        self._data = np.zeros(size_bytes, dtype=np.uint8)

    # ------------------------------------------------------------ raw access
    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size_bytes:
            raise MemoryAccessError(
                f"access [{addr:#x}, {addr + length:#x}) outside memory of "
                f"{self.size_bytes:#x} bytes"
            )

    def read(self, addr: int, length: int) -> np.ndarray:
        """Return ``length`` bytes starting at ``addr`` (as a copy).

        External callers get copy semantics: the result never aliases the
        memory image, so it stays valid across later writes.  Hot paths that
        consume the bytes immediately should use :meth:`read_view` instead.
        """
        self._check_range(addr, length)
        return self._data[addr : addr + length].copy()

    def read_view(self, addr: int, length: int) -> np.ndarray:
        """Return ``length`` bytes starting at ``addr`` as a zero-copy view.

        The view is read-only and aliases the live memory image: it reflects
        any write performed after the call.  It exists for hot paths that
        immediately re-slice, re-type or copy the bytes (``read_array``, the
        indirect converters' index resolution) — do not hold it across
        simulated cycles; use :meth:`read` for copy semantics.
        """
        self._check_range(addr, length)
        view = self._data[addr : addr + length]
        view.flags.writeable = False
        return view

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Return ``length`` bytes starting at ``addr`` as a ``bytes`` object.

        Equivalent to ``read(...).tobytes()`` but with a single copy; used on
        the word-access hot path of the banked memory model.
        """
        if addr < 0 or length < 0 or addr + length > self.size_bytes:
            raise MemoryAccessError(
                f"access [{addr:#x}, {addr + length:#x}) outside memory of "
                f"{self.size_bytes:#x} bytes"
            )
        return self._data.data[addr : addr + length].tobytes()

    def write(self, addr: int, data: Union[bytes, bytearray, np.ndarray]) -> None:
        """Write a byte string or byte array at ``addr``."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            payload = np.frombuffer(data, dtype=np.uint8)
        else:
            payload = np.asarray(data, dtype=np.uint8).ravel()
        self._check_range(addr, len(payload))
        self._data[addr : addr + len(payload)] = payload

    # ---------------------------------------------------------- typed access
    def read_array(self, addr: int, count: int, dtype: Union[str, np.dtype]) -> np.ndarray:
        """Read ``count`` elements of ``dtype`` starting at ``addr``.

        Built on :meth:`read_view` so the bytes are copied exactly once (into
        the typed result) instead of once per layer.
        """
        dtype = np.dtype(dtype)
        raw = self.read_view(addr, count * dtype.itemsize)
        return raw.view(dtype).copy()

    def write_array(self, addr: int, values: np.ndarray) -> None:
        """Write a typed numpy array at ``addr``."""
        values = np.ascontiguousarray(values)
        self.write(addr, values.view(np.uint8))

    def read_scattered(self, addresses: np.ndarray, elem_bytes: int) -> np.ndarray:
        """Gather ``elem_bytes``-sized elements from arbitrary addresses.

        Returns a flat byte array of ``len(addresses) * elem_bytes`` bytes in
        address-list order.  Used by functional checks and the fast model.
        """
        out = np.empty(len(addresses) * elem_bytes, dtype=np.uint8)
        for i, addr in enumerate(addresses):
            self._check_range(int(addr), elem_bytes)
            out[i * elem_bytes : (i + 1) * elem_bytes] = self._data[
                int(addr) : int(addr) + elem_bytes
            ]
        return out

    def write_scattered(self, addresses: np.ndarray, data: np.ndarray, elem_bytes: int) -> None:
        """Scatter ``elem_bytes``-sized elements to arbitrary addresses."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            payload = np.frombuffer(data, dtype=np.uint8)
        else:
            payload = np.asarray(data, dtype=np.uint8).ravel()
        if len(payload) != len(addresses) * elem_bytes:
            raise MemoryAccessError(
                "scatter payload size does not match address count x element size"
            )
        for i, addr in enumerate(addresses):
            self._check_range(int(addr), elem_bytes)
            self._data[int(addr) : int(addr) + elem_bytes] = payload[
                i * elem_bytes : (i + 1) * elem_bytes
            ]

    # -------------------------------------------------------------- utilities
    def fill(self, value: int = 0) -> None:
        """Fill the whole memory with a byte value."""
        self._data.fill(value)

    def snapshot(self) -> np.ndarray:
        """Return a copy of the entire memory image."""
        return self._data.copy()

    def __len__(self) -> int:
        return self.size_bytes
