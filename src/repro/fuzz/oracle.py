"""Functional-memory oracle: predict final state without simulating timing.

The oracle interprets a *built* program (the same
:class:`~repro.vector.builder.Program` the cycle-level engine executes) in
program order against a :class:`~repro.mem.storage.MemoryStorage` image.  It
reuses the op's own ``fn`` for computes and
:func:`~repro.mem.functional.stream_element_addresses` for memory ops, so
there is no second implementation of the ISA semantics to drift — the
contract it checks is purely that the cycle-level machinery (dispatch,
chaining, lowering, banking, arbitration, batching, elision) moves the
right bytes, not *what* the right bytes are.

Program order is exact for the fuzzer's cases: the engine may reorder
independent ops in time, but fuzz cases only let ops alias memory through
explicit fences, so the data outcome of any legal schedule equals the
program-order outcome.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import WorkloadError
from repro.mem.functional import stream_element_addresses
from repro.mem.storage import MemoryStorage
from repro.vector.builder import Program
from repro.vector.engine import _DTYPES
from repro.vector.ops import (
    KIND_COMPUTE,
    KIND_LOAD,
    KIND_STORE,
)


def interpret_program(program: Program,
                      storage: MemoryStorage) -> Dict[str, np.ndarray]:
    """Execute ``program`` functionally, mutating ``storage`` in place.

    Returns the final register file as a dict of register name to value
    array — exactly what the engine's ``regfile`` should hold after a FULL
    run.  Scalar work is a timing-only no-op.
    """
    regs: Dict[str, np.ndarray] = {}
    for op in program.ops:
        if op.KIND == KIND_LOAD:
            addresses = stream_element_addresses(storage, op.stream)
            raw = storage.read_scattered(addresses, op.stream.elem_bytes)
            dtype = _DTYPES[op.dtype]
            regs[op.dest] = raw.view(dtype)[: op.stream.num_elements].copy()
        elif op.KIND == KIND_STORE:
            if op.src not in regs:
                raise WorkloadError(
                    f"oracle: store reads unwritten register {op.src!r}"
                )
            dtype = _DTYPES[op.dtype]
            payload = np.ascontiguousarray(regs[op.src], dtype=dtype).tobytes()
            total = op.stream.total_bytes
            if len(payload) < total:
                raise WorkloadError(
                    f"oracle: register {op.src!r} holds {len(payload)} bytes "
                    f"but the store needs {total}"
                )
            addresses = stream_element_addresses(storage, op.stream)
            storage.write_scattered(
                addresses, np.frombuffer(payload, dtype=np.uint8)[:total],
                op.stream.elem_bytes,
            )
        elif op.KIND == KIND_COMPUTE:
            # Mirrors VectorEngine._apply_compute byte for byte.
            if op.fn is None:
                if op.dest is not None and op.dest not in regs:
                    regs[op.dest] = np.zeros(op.num_elements, dtype=np.float32)
                continue
            args = [regs[src] for src in op.srcs]
            result = op.fn(*args)
            if op.dest is not None and result is not None:
                regs[op.dest] = np.asarray(result)
    return regs
