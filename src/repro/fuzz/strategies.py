"""Seeded hypothesis strategies over the fuzz-case space.

The strategies lean into the address patterns most likely to expose
datapath bugs: counts and offsets near power-of-two boundaries (bus-beat
and burst straddles), strides that hit every bank of the 17-bank memory,
gathers with duplicate indices, and scatter permutations.  Everything they
emit is already legal after :func:`~repro.fuzz.case.plan_case`
normalization, so shrinking stays inside the valid space.

This module is the only one in the package that imports hypothesis at the
top level; replaying committed corpus cases does not need it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.axi.faults import BUS_FAULT_KINDS
from repro.fuzz.case import (
    INPUT_ELEMS,
    MAX_COUNT,
    MAX_SCATTER,
    NUM_REGS,
    FuzzCase,
    OpSpec,
)

#: Counts biased toward bus-beat (8 elems), burst and register boundaries.
_BOUNDARY_COUNTS = (1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                    127, 128, 129, 255, 256)
_counts = st.one_of(st.sampled_from(_BOUNDARY_COUNTS),
                    st.integers(min_value=1, max_value=MAX_COUNT))

#: Offsets biased toward the start/end of the input region and beat edges.
_BOUNDARY_OFFSETS = (0, 1, 7, 8, 15, 16, 1024, 2040, 2047)
_offsets = st.one_of(st.sampled_from(_BOUNDARY_OFFSETS),
                     st.integers(min_value=0, max_value=INPUT_ELEMS - 1))

#: Strides: 17 matches the bank count (maximum conflict pressure).
_strides = st.sampled_from((1, 2, 3, 4, 5, 7, 8, 16, 17, 31))

_regs = st.integers(min_value=0, max_value=NUM_REGS - 1)

_values = st.one_of(st.sampled_from((0.0, 1.0, -1.0, 0.5, 1e-3, 4096.0)),
                    st.floats(min_value=-8.0, max_value=8.0, width=32,
                              allow_nan=False, allow_infinity=False))

_gather_indices = st.lists(
    st.integers(min_value=0, max_value=2 * INPUT_ELEMS - 1),
    min_size=1, max_size=MAX_COUNT,
).map(tuple)

_scatter_perms = st.integers(min_value=1, max_value=MAX_SCATTER).flatmap(
    lambda n: st.permutations(tuple(range(n)))
).map(tuple)


def op_specs() -> st.SearchStrategy:
    """Strategy for one abstract op."""
    return st.one_of(
        st.builds(OpSpec, kind=st.just("vle"), dest=_regs, count=_counts,
                  offset=_offsets),
        st.builds(OpSpec, kind=st.just("vlse"), dest=_regs, count=_counts,
                  offset=_offsets, stride=_strides),
        st.builds(OpSpec, kind=st.just("gather"), dest=_regs,
                  indices=_gather_indices),
        st.builds(OpSpec, kind=st.just("vse"), src=_regs, count=_counts),
        st.builds(OpSpec, kind=st.just("vsse"), src=_regs, count=_counts,
                  stride=_strides),
        st.builds(OpSpec, kind=st.just("scatter"), src=_regs,
                  indices=_scatter_perms),
        st.builds(OpSpec, kind=st.sampled_from(("add", "mul", "macc")),
                  dest=_regs, src=_regs, src2=_regs, count=_counts),
        st.builds(OpSpec, kind=st.just("redsum"), dest=_regs, src=_regs,
                  count=_counts),
        st.builds(OpSpec, kind=st.just("broadcast"), dest=_regs,
                  count=_counts, value=_values),
        st.builds(OpSpec, kind=st.just("scalar"),
                  cycles=st.integers(min_value=1, max_value=8)),
        st.builds(OpSpec, kind=st.just("fence_readback"), dest=_regs,
                  src=_regs, count=_counts),
    )


#: Optional bus-fault axis: most cases run fault-free (``None`` twice in
#: the one_of biases generation toward the clean differential checks); the
#: rest inject one fault kind against one store ordinal.  Shrinking pulls
#: toward ``None``, so a divergence that survives without the fault axis
#: sheds it.
_bus_faults = st.one_of(
    st.none(),
    st.none(),
    st.tuples(st.sampled_from(BUS_FAULT_KINDS),
              st.integers(min_value=0, max_value=15)),
)


def fuzz_cases() -> st.SearchStrategy:
    """Strategy for a whole case: kind, data seed, 1-3 segments of 1-6 ops."""
    segments = st.lists(
        st.lists(op_specs(), min_size=1, max_size=6).map(tuple),
        min_size=1, max_size=3,
    ).map(tuple)
    return st.builds(
        FuzzCase,
        kind=st.sampled_from(("base", "pack", "ideal")),
        seed=st.integers(min_value=0, max_value=2 ** 16 - 1),
        segments=segments,
        bus_fault=_bus_faults,
    )
