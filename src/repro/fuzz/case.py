"""Fuzz-case description, normalization, and lowering to builder programs.

A :class:`FuzzCase` is a compact, JSON-serializable recipe for a random but
*legal* vector kernel: a target system kind, a data seed, and one or more
*segments* of abstract op specs.  Segments are the sharding unit — a
two-engine run splits the segments across engines the same way
``Workload.shard_rows`` splits rows — so a segment must lower to the exact
same instruction sequence whether it lands in a shared or a private program.
That is why all normalization (clamping counts, resolving addresses,
repairing reads of cold registers) happens per segment, never globally.

The address map keeps the differential harness deterministic by
construction:

* a read-only input region that loads/gathers source from,
* per-op index arrays (written once at initialization, never stored to),
* per-store-op disjoint output regions.

Because no two store ops ever alias and inputs are never written, the final
memory image is independent of how ops interleave across engines — the
functional oracle's program-order answer is exact for every cube point.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.mem.storage import MemoryStorage
from repro.vector.builder import AraProgramBuilder, Program
from repro.vector.config import LoweringMode, VectorEngineConfig
from repro.workloads.base import idle_program, shard_ranges

#: Read-only float32 input region all loads/gathers source from.
INPUT_BASE = 0x1000
INPUT_ELEMS = 2048
#: Index arrays for gathers/scatters are bump-allocated from here.
INDEX_BASE = 0x40000
#: Per-store-op output regions are bump-allocated from here.
OUTPUT_BASE = 0x100000
#: Upper bound on vector length per op (well under max_vl = 1024).
MAX_COUNT = 256
#: Scatters use a permutation, so cap them lower to bound index-array size.
MAX_SCATTER = 128
#: Size of the per-segment data register pool (r0..r5).
NUM_REGS = 6

#: Abstract op kinds a segment may contain.
OP_KINDS = (
    "vle",            # unit-stride load from the input region
    "vlse",           # strided load from the input region
    "gather",         # indexed load (vlimxei32 on PACK, vle32+vluxei32 else)
    "vse",            # unit-stride store to a private output region
    "vsse",           # strided store to a private output region
    "scatter",        # indexed store through a permutation (no duplicates)
    "add",            # vfadd dest = src + src2
    "mul",            # vfmul dest = src * src2
    "macc",           # vfmacc dest += src * src2
    "redsum",         # vfredsum dest = sum(src)
    "broadcast",      # vmv_vx dest = value
    "scalar",         # scalar-core bookkeeping cycles
    "fence_readback", # ordered store + fence + load back from the same region
)


@dataclass(frozen=True)
class OpSpec:
    """One abstract op. Unused fields are ignored by the op's kind."""

    kind: str
    dest: int = 0
    src: int = 0
    src2: int = 0
    count: int = 1
    offset: int = 0
    stride: int = 1
    value: float = 1.0
    indices: Tuple[int, ...] = ()
    cycles: int = 1


@dataclass(frozen=True)
class FuzzCase:
    """A complete fuzz input: system kind, data seed, and op segments.

    ``bus_fault`` is the optional fault-injection axis: ``(kind, ordinal)``
    where ``kind`` is a :data:`repro.axi.faults.BUS_FAULT_KINDS` entry and
    ``ordinal`` selects one of the case's *store* ops (modulo the store
    count, in (segment, position) order).  The runner turns it into a
    :class:`~repro.axi.faults.BusFaultPlan` keyed on the chosen store's
    output byte-address region — topology-stable by construction, so the
    same case faults the same access on every cube topology.  Cases with no
    store ops run fault-free regardless.
    """

    kind: str = "pack"
    seed: int = 0
    segments: Tuple[Tuple[OpSpec, ...], ...] = ((OpSpec("vle"),),)
    bus_fault: Optional[Tuple[str, int]] = None

    @property
    def mode(self) -> LoweringMode:
        return LoweringMode(self.kind)

    def describe(self) -> str:
        ops = sum(len(segment) for segment in self.segments)
        fault = f", bus_fault={self.bus_fault[0]}@store{self.bus_fault[1]}" \
            if self.bus_fault else ""
        return (f"FuzzCase(kind={self.kind}, seed={self.seed}, "
                f"{len(self.segments)} segment(s), {ops} op(s){fault})")


# --------------------------------------------------------------- planning
@dataclass(frozen=True)
class PlannedOp:
    """An :class:`OpSpec` with every field clamped legal and addresses fixed."""

    kind: str
    dest: int = 0
    src: int = 0
    src2: int = 0
    count: int = 1
    base: int = 0
    stride: int = 1
    value: float = 1.0
    index_addr: int = 0
    indices: Optional[np.ndarray] = None
    cycles: int = 1


@dataclass
class CasePlan:
    """A normalized case: resolved ops plus the index arrays to pre-load."""

    case: FuzzCase
    segments: List[List[PlannedOp]] = field(default_factory=list)
    index_arrays: List[Tuple[int, np.ndarray]] = field(default_factory=list)

    @property
    def memory_bytes_needed(self) -> int:
        high = OUTPUT_BASE
        for segment in self.segments:
            for op in segment:
                if op.kind in ("vse", "fence_readback"):
                    high = max(high, op.base + op.count * 4)
                elif op.kind == "vsse":
                    high = max(high, op.base + ((op.count - 1) * op.stride + 1) * 4)
                elif op.kind == "scatter":
                    high = max(high, op.base + op.count * 4)
        return high


def _clamp_count(count: int, limit: int = MAX_COUNT) -> int:
    return max(1, min(int(count), limit))


def _as_permutation(indices: Sequence[int], n: int) -> np.ndarray:
    """Coerce arbitrary ints into a permutation of ``range(n)``.

    Values are taken mod ``n``; collisions advance to the next free slot.
    Scatters must not carry duplicate indices: the cycle-level model issues
    element writes in whatever order the datapath lowers them, so duplicate
    targets would make the final byte depend on timing.
    """
    taken = np.zeros(n, dtype=bool)
    out = np.empty(n, dtype=np.uint32)
    for pos in range(n):
        value = int(indices[pos]) % n if pos < len(indices) else pos
        while taken[value]:
            value = (value + 1) % n
        taken[value] = True
        out[pos] = value
    return out


def plan_case(case: FuzzCase) -> CasePlan:
    """Normalize a case: clamp every field legal and allocate all addresses.

    Allocation walks ops in (segment, position) order with shared bump
    cursors, so the plan is identical no matter how segments are later
    sharded across engines.
    """
    plan = CasePlan(case=case)
    out_cursor = OUTPUT_BASE
    idx_cursor = INDEX_BASE

    def alloc_out(nbytes: int) -> int:
        nonlocal out_cursor
        base = out_cursor
        # Keep regions 64-byte aligned and pad so neighbouring bursts never
        # share a bus beat (data disjointness must hold at byte level).
        out_cursor += (nbytes + 63) // 64 * 64
        return base

    def alloc_index(values: np.ndarray) -> int:
        nonlocal idx_cursor
        base = idx_cursor
        idx_cursor += (values.nbytes + 63) // 64 * 64
        if idx_cursor > OUTPUT_BASE:
            raise WorkloadError("fuzz case exhausted the index region")
        plan.index_arrays.append((base, values))
        return base

    for segment in case.segments:
        planned: List[PlannedOp] = []
        for spec in segment:
            kind = spec.kind
            dest = spec.dest % NUM_REGS
            src = spec.src % NUM_REGS
            src2 = spec.src2 % NUM_REGS
            if kind == "vle":
                offset = spec.offset % INPUT_ELEMS
                count = _clamp_count(spec.count, min(MAX_COUNT, INPUT_ELEMS - offset))
                planned.append(PlannedOp("vle", dest=dest, count=count,
                                         base=INPUT_BASE + 4 * offset))
            elif kind == "vlse":
                offset = spec.offset % INPUT_ELEMS
                stride = 1 + abs(int(spec.stride)) % 32
                span = (INPUT_ELEMS - 1 - offset) // stride + 1
                count = _clamp_count(spec.count, min(MAX_COUNT, span))
                planned.append(PlannedOp("vlse", dest=dest, count=count,
                                         base=INPUT_BASE + 4 * offset,
                                         stride=stride))
            elif kind == "gather":
                raw = spec.indices or (0,)
                values = np.asarray([int(i) % INPUT_ELEMS
                                     for i in raw[:MAX_COUNT]], dtype=np.uint32)
                planned.append(PlannedOp("gather", dest=dest,
                                         count=len(values), base=INPUT_BASE,
                                         index_addr=alloc_index(values),
                                         indices=values))
            elif kind == "vse":
                count = _clamp_count(spec.count)
                planned.append(PlannedOp("vse", src=src, count=count,
                                         base=alloc_out(count * 4)))
            elif kind == "vsse":
                stride = 1 + abs(int(spec.stride)) % 8
                count = _clamp_count(spec.count)
                nbytes = ((count - 1) * stride + 1) * 4
                planned.append(PlannedOp("vsse", src=src, count=count,
                                         stride=stride, base=alloc_out(nbytes)))
            elif kind == "scatter":
                n = _clamp_count(len(spec.indices) or 1, MAX_SCATTER)
                values = _as_permutation(spec.indices, n)
                planned.append(PlannedOp("scatter", src=src, count=n,
                                         base=alloc_out(n * 4),
                                         index_addr=alloc_index(values),
                                         indices=values))
            elif kind in ("add", "mul", "macc"):
                count = _clamp_count(spec.count)
                planned.append(PlannedOp(kind, dest=dest, src=src, src2=src2,
                                         count=count))
            elif kind == "redsum":
                count = _clamp_count(spec.count)
                planned.append(PlannedOp("redsum", dest=dest, src=src,
                                         count=count))
            elif kind == "broadcast":
                count = _clamp_count(spec.count)
                value = float(np.float32(spec.value))
                if not np.isfinite(value):
                    value = 1.0
                planned.append(PlannedOp("broadcast", dest=dest, count=count,
                                         value=value))
            elif kind == "scalar":
                planned.append(PlannedOp("scalar",
                                         cycles=max(1, min(int(spec.cycles), 8))))
            elif kind == "fence_readback":
                count = _clamp_count(spec.count)
                planned.append(PlannedOp("fence_readback", dest=dest, src=src,
                                         count=count,
                                         base=alloc_out(count * 4)))
            else:
                raise WorkloadError(f"unknown fuzz op kind {kind!r}")
        plan.segments.append(planned)
    return plan


# ----------------------------------------------------------- initialization
def initialize_image(storage: MemoryStorage, plan: CasePlan) -> None:
    """Write the input data and every index array into a fresh memory image."""
    rng = np.random.default_rng(plan.case.seed)
    data = rng.standard_normal(INPUT_ELEMS).astype(np.float32)
    storage.write_array(INPUT_BASE, data)
    for base, values in plan.index_arrays:
        storage.write_array(base, values)


# ------------------------------------------------------------------ emission
def _emit_segment(builder: AraProgramBuilder, seg_id: int,
                  planned: Sequence[PlannedOp], mode: LoweringMode) -> None:
    """Lower one segment's planned ops through the program builder.

    ``warm`` tracks the exact element length of each pool register some
    earlier op in *this segment* produced; reading an unsuitable register
    first broadcasts a deterministic fill (the legality repair that makes
    every random sequence a valid program).  Stores only need the register
    to hold at least ``count`` elements, but elementwise arithmetic applies
    its ``fn`` to the *whole* registers, so those sources must match the op
    length exactly.  The repair is segment-local on purpose: the emitted
    instruction stream must not change when neighbouring segments move to a
    different engine.
    """
    warm: Dict[int, int] = {}

    def reg(index: int) -> str:
        return f"s{seg_id}r{index}"

    def fill(index: int, count: int) -> None:
        builder.vmv_vx(reg(index), 0.5 * (index + 1), count,
                       label=f"warm r{index}")
        warm[index] = count

    def ensure_min(index: int, count: int) -> None:
        if warm.get(index, 0) < count:
            fill(index, count)

    def ensure_exact(index: int, count: int) -> None:
        if warm.get(index, 0) != count:
            fill(index, count)

    for pos, op in enumerate(planned):
        idx_reg = f"s{seg_id}x{pos}"
        if op.kind == "vle":
            builder.vle32(reg(op.dest), op.base, op.count)
            warm[op.dest] = op.count
        elif op.kind == "vlse":
            builder.vlse32(reg(op.dest), op.base, op.count, op.stride)
            warm[op.dest] = op.count
        elif op.kind == "gather":
            if mode.has_axi_pack:
                builder.vlimxei32(reg(op.dest), op.base, op.index_addr, op.count)
            else:
                builder.vle32(idx_reg, op.index_addr, op.count,
                              kind="index", dtype="uint32")
                builder.vluxei32(reg(op.dest), op.base, idx_reg, op.count,
                                 index_base=op.index_addr)
            warm[op.dest] = op.count
        elif op.kind == "vse":
            ensure_min(op.src, op.count)
            builder.vse32(reg(op.src), op.base, op.count)
        elif op.kind == "vsse":
            ensure_min(op.src, op.count)
            builder.vsse32(reg(op.src), op.base, op.count, op.stride)
        elif op.kind == "scatter":
            ensure_min(op.src, op.count)
            if mode.has_axi_pack:
                builder.vsimxei32(reg(op.src), op.base, op.index_addr, op.count)
            else:
                builder.vle32(idx_reg, op.index_addr, op.count,
                              kind="index", dtype="uint32")
                builder.vsuxei32(reg(op.src), op.base, idx_reg, op.count,
                                 index_base=op.index_addr)
        elif op.kind in ("add", "mul"):
            ensure_exact(op.src, op.count)
            ensure_exact(op.src2, op.count)
            emit = builder.vfadd if op.kind == "add" else builder.vfmul
            emit(reg(op.dest), reg(op.src), reg(op.src2), op.count)
            warm[op.dest] = op.count
        elif op.kind == "macc":
            ensure_exact(op.src, op.count)
            ensure_exact(op.src2, op.count)
            ensure_exact(op.dest, op.count)
            builder.vfmacc(reg(op.dest), reg(op.src), reg(op.src2), op.count)
            warm[op.dest] = op.count
        elif op.kind == "redsum":
            ensure_min(op.src, op.count)
            builder.vfredsum(reg(op.dest), reg(op.src), op.count)
            warm[op.dest] = 1
        elif op.kind == "broadcast":
            builder.vmv_vx(reg(op.dest), op.value, op.count)
            warm[op.dest] = op.count
        elif op.kind == "scalar":
            builder.scalar(op.cycles, label="fuzz scalar work")
        elif op.kind == "fence_readback":
            ensure_min(op.src, op.count)
            builder.vse32(reg(op.src), op.base, op.count, ordered=True,
                          label="fenced store")
            builder.fence()
            builder.vle32(reg(op.dest), op.base, op.count, label="readback")
            warm[op.dest] = op.count


def build_case_programs(
    plan_or_case: Union[CasePlan, FuzzCase],
    num_engines: int = 1,
    config: Optional[VectorEngineConfig] = None,
) -> List[Program]:
    """Lower a case into one validated program per engine.

    Segments are split across engines exactly like ``Workload.shard_rows``
    splits rows (balanced contiguous ranges); an engine left without
    segments receives the standard idle program.
    """
    plan = plan_or_case if isinstance(plan_or_case, CasePlan) else plan_case(plan_or_case)
    case = plan.case
    mode = case.mode
    config = config or VectorEngineConfig()
    programs: List[Program] = []
    for engine, (lo, hi) in enumerate(shard_ranges(len(plan.segments), num_engines)):
        name = f"fuzz-{case.kind}-s{case.seed}-e{engine}"
        if lo == hi:
            programs.append(idle_program(name, mode, config))
            continue
        builder = AraProgramBuilder(name, mode, config)
        for seg_id in range(lo, hi):
            _emit_segment(builder, seg_id, plan.segments[seg_id], mode)
        program = builder.build()
        program.validate(config)
        programs.append(program)
    return programs


# -------------------------------------------------------------- persistence
def case_to_dict(case: FuzzCase) -> dict:
    """JSON-ready dict; inverse of :func:`case_from_dict`.

    ``bus_fault`` is emitted only when set, so fault-free cases keep the
    digests (and corpus file names) they had before the axis existed.
    """
    payload = {
        "kind": case.kind,
        "seed": case.seed,
        "segments": [
            [{key: (list(value) if isinstance(value, tuple) else value)
              for key, value in dataclasses.asdict(spec).items()}
             for spec in segment]
            for segment in case.segments
        ],
    }
    if case.bus_fault is not None:
        payload["bus_fault"] = list(case.bus_fault)
    return payload


def case_from_dict(payload: dict) -> FuzzCase:
    """Rebuild a case from :func:`case_to_dict` output."""
    segments = tuple(
        tuple(OpSpec(**{key: (tuple(value) if key == "indices" else value)
                        for key, value in spec.items()})
              for spec in segment)
        for segment in payload["segments"]
    )
    bus_fault = payload.get("bus_fault")
    return FuzzCase(kind=payload["kind"], seed=payload["seed"],
                    segments=segments,
                    bus_fault=tuple(bus_fault) if bus_fault else None)


def case_digest(case: FuzzCase) -> str:
    """Short content hash used to name corpus files."""
    canonical = json.dumps(case_to_dict(case), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def save_corpus_case(case: FuzzCase, directory: Union[str, Path],
                     note: str = "") -> Path:
    """Write a case (e.g. a shrunk divergence) as a corpus JSON file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"case-{case_digest(case)}.json"
    payload = {"schema": 1, "note": note, "case": case_to_dict(case)}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_corpus_case(path: Union[str, Path]) -> FuzzCase:
    """Load a corpus JSON file written by :func:`save_corpus_case`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != 1:
        raise WorkloadError(f"unsupported corpus schema in {path}")
    return case_from_dict(payload["case"])
