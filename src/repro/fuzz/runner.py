"""Differential fuzz harness: one case, every point of the config cube.

``run_fuzz_case`` executes a :class:`~repro.fuzz.case.FuzzCase` on every
cube point — event-driven/naive engine x scalar/batch datapath x FULL/ELIDE
data policy, on the single-engine topology and (when the case has at least
two segments) a two-engine sharded topology over one shared channel plus
the two-engine x two-channel crossbar — and checks:

* FULL points reproduce the functional oracle's final memory image and
  per-engine register files byte for byte;
* every point within a topology reports bit-identical cycles, stats and
  per-engine results (ELIDE included: data elision must be timing-exact).

Cycle counts are *not* compared across topologies — adding an interconnect
changes timing by design; each ``(engines, channels)`` topology is its own
identity class.

Cases may carry a **bus-fault axis** (``FuzzCase.bus_fault``): the runner
lowers it to a :class:`~repro.axi.faults.BusFaultPlan` keyed on one store
op's output byte-address region (topology-stable) and then demands that
every point of a topology agrees bit-identically on the structured fault
report *and* the final FULL memory image, and that the aborted image is
sane: every non-faulted store region is all-oracle (the op completed) or
all-initial (the op was never dispatched), and nothing outside the case's
store regions moved.  ``stall`` faults are absorbed by back-pressure, so
those runs must complete fault-free and pass the ordinary oracle checks.

``fuzz_main`` drives the harness from seeded hypothesis strategies with
shrinking, which is what ``repro fuzz`` invokes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.axi.faults import BusFaultPlan, BusFaultSpec
from repro.axi.transaction import reset_txn_ids
from repro.fuzz.case import (
    CasePlan,
    FuzzCase,
    build_case_programs,
    case_to_dict,
    initialize_image,
    plan_case,
    save_corpus_case,
)
from repro.fuzz.oracle import interpret_program
from repro.mem.storage import MemoryStorage
from repro.sim.datapath import datapath_override
from repro.system.config import SystemConfig, SystemKind
from repro.system.soc import build_system

#: Memory image size for fuzz SoCs (2 MiB keeps snapshots cheap to compare).
FUZZ_MEMORY_BYTES = 1 << 21

#: (datapath, event_driven, policy) points for the single-engine topology.
CUBE_SINGLE: Tuple[Tuple[str, bool, str], ...] = tuple(
    (datapath, event, policy)
    for datapath in ("batch", "scalar")
    for event in (True, False)
    for policy in ("full", "elide")
)

#: Multi-engine subset: batch datapath only, to bound per-case runtime.
CUBE_DUAL: Tuple[Tuple[str, bool, str], ...] = tuple(
    ("batch", event, policy)
    for event in (True, False)
    for policy in ("full", "elide")
)

#: (engines, channels) topologies the cube covers.  (2, 2) exercises the
#: M×N demux/mux crossbar with stripe-interleaved channel routing; like the
#: shared-channel topologies it must match the functional oracle exactly.
CUBE_TOPOLOGIES: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 1), (2, 2))


class FuzzDivergence(AssertionError):
    """A cube point disagreed with the oracle or with another point."""

    def __init__(self, case: FuzzCase, point: str, detail: str) -> None:
        self.case = case
        self.point = point
        self.detail = detail
        super().__init__(
            f"{case.describe()} diverged at point [{point}]: {detail}\n"
            f"case dict: {case_to_dict(case)}"
        )


@dataclass
class FuzzCaseReport:
    """What a clean run of one case covered."""

    case: FuzzCase
    points: List[str] = field(default_factory=list)
    #: cycles per (engines, channels) topology (each its own identity class)
    cycles_by_topology: Dict[Tuple[int, int], int] = field(default_factory=dict)


def _store_regions(plan: CasePlan) -> List[Tuple[int, int]]:
    """All store-op output regions as ``(base, nbytes)`` in program order.

    The order is the same (segment, position) walk ``plan_case`` allocates
    in, so a fault ordinal names the same region on every topology.
    """
    regions: List[Tuple[int, int]] = []
    for segment in plan.segments:
        for op in segment:
            if op.kind in ("vse", "scatter", "fence_readback"):
                regions.append((op.base, op.count * 4))
            elif op.kind == "vsse":
                regions.append((op.base, ((op.count - 1) * op.stride + 1) * 4))
    return regions


def _fault_plan(plan: CasePlan) -> Tuple[Optional[BusFaultPlan],
                                         Optional[Tuple[int, int]]]:
    """Lower ``case.bus_fault`` to a plan keyed on one store's byte region.

    Returns ``(None, None)`` when the case carries no fault axis or has no
    store ops to target (a fault with nothing to hit degenerates to a
    fault-free run).
    """
    case = plan.case
    if case.bus_fault is None:
        return None, None
    regions = _store_regions(plan)
    if not regions:
        return None, None
    kind, ordinal = case.bus_fault
    base, nbytes = regions[int(ordinal) % len(regions)]
    spec = BusFaultSpec(kind=kind, addr_lo=base, addr_hi=base + nbytes)
    return BusFaultPlan(faults=(spec,)), (base, nbytes)


def _check_aborted_memory(case: FuzzCase, point: str,
                          regions: List[Tuple[int, int]],
                          faulted: Tuple[int, int],
                          initial: np.ndarray, expected: np.ndarray,
                          actual: np.ndarray) -> None:
    """Sanity-check a FULL image after a graceful abort.

    Which ops beyond the faulting one still ran is timing-dependent across
    topologies, but every individual outcome is all-or-nothing: an op
    dispatched before the abort drains to completion (its region matches
    the oracle), an op never dispatched leaves its region untouched (the
    initial image).  The faulted op's own region is the one place partial
    effects are legal, so it is exempt.
    """
    checked = np.zeros(actual.shape[0], dtype=bool)
    for base, nbytes in regions:
        window = slice(base, base + nbytes)
        checked[window] = True
        if (base, nbytes) == faulted:
            continue
        got = actual[window]
        if not (np.array_equal(got, expected[window])
                or np.array_equal(got, initial[window])):
            raise FuzzDivergence(
                case, point,
                f"aborted run corrupted store region "
                f"[{hex(base)}, {hex(base + nbytes)}): matches neither the "
                f"oracle (op completed) nor the initial image (op dropped)")
    rest = ~checked
    if not np.array_equal(actual[rest], initial[rest]):
        raise FuzzDivergence(
            case, point,
            "aborted run modified memory outside the case's store regions")


def _first_diff(expected: np.ndarray, actual: np.ndarray) -> str:
    mismatch = np.nonzero(expected != actual)[0]
    addr = int(mismatch[0])
    return (f"{len(mismatch)} byte(s) differ; first at {hex(addr)}: "
            f"expected {expected[addr]:#04x}, got {actual[addr]:#04x}")


def _compare_regfile(point: str, case: FuzzCase, engine_name: str,
                     expected: Dict[str, np.ndarray],
                     actual: Dict[str, np.ndarray]) -> None:
    if set(expected) != set(actual):
        raise FuzzDivergence(
            case, point,
            f"{engine_name}: register sets differ — oracle {sorted(expected)}, "
            f"engine {sorted(actual)}")
    for name in sorted(expected):
        want, got = expected[name], actual[name]
        if want.dtype != got.dtype or want.shape != got.shape \
                or not np.array_equal(want, got):
            raise FuzzDivergence(
                case, point,
                f"{engine_name}: register {name!r} differs — oracle "
                f"{want.dtype}{want.shape} {want[:4]!r}..., engine "
                f"{got.dtype}{got.shape} {got[:4]!r}...")


def run_fuzz_case(case: FuzzCase, max_cycles: int = 5_000_000) -> FuzzCaseReport:
    """Run one case across the cube; raise :class:`FuzzDivergence` on mismatch."""
    plan = plan_case(case)
    report = FuzzCaseReport(case=case)
    fault_plan, faulted_region = _fault_plan(plan)
    # ``stall`` perturbs timing but completes cleanly; the error kinds abort.
    fault_aborts = fault_plan is not None and case.bus_fault[0] != "stall"

    # Oracle pass: one interpretation gives the expected final memory image
    # (identical for every topology — output regions are disjoint and inputs
    # read-only) and the expected per-engine register files per topology.
    oracle_storage = MemoryStorage(FUZZ_MEMORY_BYTES)
    initialize_image(oracle_storage, plan)
    initial_mem = oracle_storage.snapshot() if fault_aborts else None
    multi_engine_ok = len(plan.segments) >= 2
    topologies = [
        topo for topo in CUBE_TOPOLOGIES if multi_engine_ok or topo[0] == 1
    ]
    # Register files depend only on the engine split, never on the channel
    # count (channels partition timing, not data), so the oracle is keyed by
    # engine count alone.
    oracle_regs: Dict[int, List[Dict[str, np.ndarray]]] = {}
    for num_engines in sorted({topo[0] for topo in topologies}):
        programs = build_case_programs(plan, num_engines)
        if num_engines == 1:
            oracle_regs[1] = [interpret_program(programs[0], oracle_storage)]
        else:
            # Same ops as the single-engine pass — reinterpret against a
            # scratch image purely for the per-engine register split.
            scratch = MemoryStorage(FUZZ_MEMORY_BYTES)
            initialize_image(scratch, plan)
            oracle_regs[num_engines] = [
                interpret_program(p, scratch) for p in programs
            ]
    expected_mem = oracle_storage.snapshot()

    for num_engines, num_channels in topologies:
        programs = build_case_programs(plan, num_engines)
        cube = CUBE_SINGLE if (num_engines, num_channels) == (1, 1) else CUBE_DUAL
        topo_tag = (f"{num_engines}eng" if num_channels == 1
                    else f"{num_engines}eng{num_channels}ch")
        baseline: Optional[Tuple[str, tuple]] = None
        abort_mem: Optional[Tuple[str, np.ndarray]] = None
        for datapath, event, policy in cube:
            point = (f"{topo_tag}/{datapath}/"
                     f"{'event' if event else 'naive'}/{policy}")
            with datapath_override(datapath):
                reset_txn_ids()
                config = SystemConfig(
                    memory_bytes=FUZZ_MEMORY_BYTES, data_policy=policy,
                ).with_kind(SystemKind(case.kind))
                if num_engines > 1:
                    config = config.with_engines(num_engines)
                if num_channels > 1:
                    config = config.with_channels(num_channels)
                if fault_plan is not None:
                    config = config.with_bus_faults(fault_plan)
                soc = build_system(config)
                initialize_image(soc.storage, plan)
                cycles, results = soc.run_programs(
                    programs, max_cycles=max_cycles, event_driven=event)
            fault_report = soc.last_fault_report
            if fault_aborts and fault_report is None:
                raise FuzzDivergence(
                    case, point,
                    f"injected {case.bus_fault[0]} fault produced no "
                    f"fault report — the abort was swallowed")
            if not fault_aborts and fault_report is not None:
                raise FuzzDivergence(
                    case, point,
                    f"unexpected fault report on a run that should "
                    f"complete: {fault_report}")
            # The fault report (serialized canonically) joins the
            # within-topology identity key: every cube point must abort on
            # the same op at the same cycle with the same response.
            key = (cycles, dict(soc.stats_snapshot()), tuple(results),
                   json.dumps(fault_report, sort_keys=True))
            if baseline is None:
                baseline = (point, key)
                report.cycles_by_topology[(num_engines, num_channels)] = cycles
            elif key != baseline[1]:
                base_point, base_key = baseline
                parts = []
                if key[0] != base_key[0]:
                    parts.append(f"cycles {base_key[0]} vs {key[0]}")
                if key[1] != base_key[1]:
                    diffs = {k for k in set(key[1]) | set(base_key[1])
                             if key[1].get(k) != base_key[1].get(k)}
                    parts.append(f"stats differ on {sorted(diffs)[:6]}")
                if key[2] != base_key[2]:
                    parts.append("per-engine results differ")
                if key[3] != base_key[3]:
                    parts.append(f"fault reports differ: "
                                 f"{base_key[3]} vs {key[3]}")
                raise FuzzDivergence(
                    case, point,
                    f"not bit-identical to [{base_point}]: {'; '.join(parts)}")
            if policy == "full":
                actual_mem = soc.storage.snapshot()
                if fault_aborts:
                    # Aborted runs cannot match the oracle wholesale; demand
                    # instead that every FULL point of this topology lands
                    # on the same image and that the image decomposes into
                    # completed-vs-dropped ops cleanly.
                    if abort_mem is None:
                        abort_mem = (point, actual_mem)
                        _check_aborted_memory(
                            case, point, _store_regions(plan), faulted_region,
                            initial_mem, expected_mem, actual_mem)
                    elif not np.array_equal(abort_mem[1], actual_mem):
                        raise FuzzDivergence(
                            case, point,
                            f"aborted memory image differs from "
                            f"[{abort_mem[0]}]: "
                            + _first_diff(abort_mem[1], actual_mem))
                else:
                    if not np.array_equal(expected_mem, actual_mem):
                        raise FuzzDivergence(
                            case, point,
                            "memory image differs from oracle: "
                            + _first_diff(expected_mem, actual_mem))
                    for engine, expected in zip(soc.last_engines,
                                                oracle_regs[num_engines]):
                        _compare_regfile(point, case, engine.name, expected,
                                         engine.regfile._vector)
            report.points.append(point)
    return report


# -------------------------------------------------------------- CLI driver
def fuzz_main(cases: int = 100, seed: int = 0, shrink: bool = True,
              corpus_dir: Optional[str] = None,
              max_cycles: int = 5_000_000, quiet: bool = False) -> int:
    """Run ``cases`` seeded random cases; shrink and report any divergence.

    Returns a process exit code: 0 clean, 1 divergence found, 2 harness
    could not run (hypothesis unavailable).
    """
    try:
        from hypothesis import HealthCheck, Phase, given
        from hypothesis import seed as hypothesis_seed
        from hypothesis import settings
    except ImportError:  # pragma: no cover - image always ships hypothesis
        print("repro fuzz needs the 'hypothesis' package; it is not installed")
        return 2
    from repro.fuzz.strategies import fuzz_cases

    executions = 0
    phases = [Phase.generate] + ([Phase.shrink] if shrink else [])

    @hypothesis_seed(seed)
    @settings(max_examples=cases, database=None, deadline=None,
              phases=phases, suppress_health_check=list(HealthCheck),
              print_blob=False)
    @given(case=fuzz_cases())
    def drive(case: FuzzCase) -> None:
        nonlocal executions
        executions += 1
        if not quiet and executions % 25 == 0:
            print(f"  ... {executions} case executions")
        run_fuzz_case(case, max_cycles=max_cycles)

    try:
        drive()
    except FuzzDivergence as failure:
        print(f"DIVERGENCE (shrunk={shrink}): {failure}")
        if corpus_dir is not None:
            path = save_corpus_case(
                failure.case, corpus_dir,
                note=f"divergence at [{failure.point}]: {failure.detail}")
            print(f"shrunk case written to {path}")
            print(f"replay with: repro fuzz --replay {path}")
        return 1
    if not quiet:
        print(f"fuzz: {cases} cases ({executions} executions incl. retries) "
              f"clean — every cube point matched the oracle")
    return 0


def replay_case(path: str, max_cycles: int = 5_000_000,
                quiet: bool = False) -> int:
    """Re-run one committed corpus case; exit code mirrors :func:`fuzz_main`."""
    from repro.fuzz.case import load_corpus_case

    case = load_corpus_case(path)
    try:
        report = run_fuzz_case(case, max_cycles=max_cycles)
    except FuzzDivergence as failure:
        print(f"DIVERGENCE: {failure}")
        return 1
    if not quiet:
        print(f"{case.describe()}: clean across {len(report.points)} points "
              f"({', '.join(report.points)})")
    return 0
