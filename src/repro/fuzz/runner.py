"""Differential fuzz harness: one case, every point of the config cube.

``run_fuzz_case`` executes a :class:`~repro.fuzz.case.FuzzCase` on every
cube point — event-driven/naive engine x scalar/batch datapath x FULL/ELIDE
data policy, on the single-engine topology and (when the case has at least
two segments) a two-engine sharded topology over one shared channel plus
the two-engine x two-channel crossbar — and checks:

* FULL points reproduce the functional oracle's final memory image and
  per-engine register files byte for byte;
* every point within a topology reports bit-identical cycles, stats and
  per-engine results (ELIDE included: data elision must be timing-exact).

Cycle counts are *not* compared across topologies — adding an interconnect
changes timing by design; each ``(engines, channels)`` topology is its own
identity class.

``fuzz_main`` drives the harness from seeded hypothesis strategies with
shrinking, which is what ``repro fuzz`` invokes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.axi.transaction import reset_txn_ids
from repro.fuzz.case import (
    FuzzCase,
    build_case_programs,
    case_to_dict,
    initialize_image,
    plan_case,
    save_corpus_case,
)
from repro.fuzz.oracle import interpret_program
from repro.mem.storage import MemoryStorage
from repro.sim.datapath import DATAPATH_ENV
from repro.system.config import SystemConfig, SystemKind
from repro.system.soc import build_system

#: Memory image size for fuzz SoCs (2 MiB keeps snapshots cheap to compare).
FUZZ_MEMORY_BYTES = 1 << 21

#: (datapath, event_driven, policy) points for the single-engine topology.
CUBE_SINGLE: Tuple[Tuple[str, bool, str], ...] = tuple(
    (datapath, event, policy)
    for datapath in ("batch", "scalar")
    for event in (True, False)
    for policy in ("full", "elide")
)

#: Multi-engine subset: batch datapath only, to bound per-case runtime.
CUBE_DUAL: Tuple[Tuple[str, bool, str], ...] = tuple(
    ("batch", event, policy)
    for event in (True, False)
    for policy in ("full", "elide")
)

#: (engines, channels) topologies the cube covers.  (2, 2) exercises the
#: M×N demux/mux crossbar with stripe-interleaved channel routing; like the
#: shared-channel topologies it must match the functional oracle exactly.
CUBE_TOPOLOGIES: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 1), (2, 2))


class FuzzDivergence(AssertionError):
    """A cube point disagreed with the oracle or with another point."""

    def __init__(self, case: FuzzCase, point: str, detail: str) -> None:
        self.case = case
        self.point = point
        self.detail = detail
        super().__init__(
            f"{case.describe()} diverged at point [{point}]: {detail}\n"
            f"case dict: {case_to_dict(case)}"
        )


@dataclass
class FuzzCaseReport:
    """What a clean run of one case covered."""

    case: FuzzCase
    points: List[str] = field(default_factory=list)
    #: cycles per (engines, channels) topology (each its own identity class)
    cycles_by_topology: Dict[Tuple[int, int], int] = field(default_factory=dict)


@contextmanager
def _datapath(mode: str):
    saved = os.environ.get(DATAPATH_ENV)
    os.environ[DATAPATH_ENV] = mode
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(DATAPATH_ENV, None)
        else:
            os.environ[DATAPATH_ENV] = saved


def _first_diff(expected: np.ndarray, actual: np.ndarray) -> str:
    mismatch = np.nonzero(expected != actual)[0]
    addr = int(mismatch[0])
    return (f"{len(mismatch)} byte(s) differ; first at {hex(addr)}: "
            f"expected {expected[addr]:#04x}, got {actual[addr]:#04x}")


def _compare_regfile(point: str, case: FuzzCase, engine_name: str,
                     expected: Dict[str, np.ndarray],
                     actual: Dict[str, np.ndarray]) -> None:
    if set(expected) != set(actual):
        raise FuzzDivergence(
            case, point,
            f"{engine_name}: register sets differ — oracle {sorted(expected)}, "
            f"engine {sorted(actual)}")
    for name in sorted(expected):
        want, got = expected[name], actual[name]
        if want.dtype != got.dtype or want.shape != got.shape \
                or not np.array_equal(want, got):
            raise FuzzDivergence(
                case, point,
                f"{engine_name}: register {name!r} differs — oracle "
                f"{want.dtype}{want.shape} {want[:4]!r}..., engine "
                f"{got.dtype}{got.shape} {got[:4]!r}...")


def run_fuzz_case(case: FuzzCase, max_cycles: int = 5_000_000) -> FuzzCaseReport:
    """Run one case across the cube; raise :class:`FuzzDivergence` on mismatch."""
    plan = plan_case(case)
    report = FuzzCaseReport(case=case)

    # Oracle pass: one interpretation gives the expected final memory image
    # (identical for every topology — output regions are disjoint and inputs
    # read-only) and the expected per-engine register files per topology.
    oracle_storage = MemoryStorage(FUZZ_MEMORY_BYTES)
    initialize_image(oracle_storage, plan)
    multi_engine_ok = len(plan.segments) >= 2
    topologies = [
        topo for topo in CUBE_TOPOLOGIES if multi_engine_ok or topo[0] == 1
    ]
    # Register files depend only on the engine split, never on the channel
    # count (channels partition timing, not data), so the oracle is keyed by
    # engine count alone.
    oracle_regs: Dict[int, List[Dict[str, np.ndarray]]] = {}
    for num_engines in sorted({topo[0] for topo in topologies}):
        programs = build_case_programs(plan, num_engines)
        if num_engines == 1:
            oracle_regs[1] = [interpret_program(programs[0], oracle_storage)]
        else:
            # Same ops as the single-engine pass — reinterpret against a
            # scratch image purely for the per-engine register split.
            scratch = MemoryStorage(FUZZ_MEMORY_BYTES)
            initialize_image(scratch, plan)
            oracle_regs[num_engines] = [
                interpret_program(p, scratch) for p in programs
            ]
    expected_mem = oracle_storage.snapshot()

    for num_engines, num_channels in topologies:
        programs = build_case_programs(plan, num_engines)
        cube = CUBE_SINGLE if (num_engines, num_channels) == (1, 1) else CUBE_DUAL
        topo_tag = (f"{num_engines}eng" if num_channels == 1
                    else f"{num_engines}eng{num_channels}ch")
        baseline: Optional[Tuple[str, tuple]] = None
        for datapath, event, policy in cube:
            point = (f"{topo_tag}/{datapath}/"
                     f"{'event' if event else 'naive'}/{policy}")
            with _datapath(datapath):
                reset_txn_ids()
                config = SystemConfig(
                    memory_bytes=FUZZ_MEMORY_BYTES, data_policy=policy,
                ).with_kind(SystemKind(case.kind))
                if num_engines > 1:
                    config = config.with_engines(num_engines)
                if num_channels > 1:
                    config = config.with_channels(num_channels)
                soc = build_system(config)
                initialize_image(soc.storage, plan)
                cycles, results = soc.run_programs(
                    programs, max_cycles=max_cycles, event_driven=event)
            key = (cycles, dict(soc.stats_snapshot()), tuple(results))
            if baseline is None:
                baseline = (point, key)
                report.cycles_by_topology[(num_engines, num_channels)] = cycles
            elif key != baseline[1]:
                base_point, base_key = baseline
                parts = []
                if key[0] != base_key[0]:
                    parts.append(f"cycles {base_key[0]} vs {key[0]}")
                if key[1] != base_key[1]:
                    diffs = {k for k in set(key[1]) | set(base_key[1])
                             if key[1].get(k) != base_key[1].get(k)}
                    parts.append(f"stats differ on {sorted(diffs)[:6]}")
                if key[2] != base_key[2]:
                    parts.append("per-engine results differ")
                raise FuzzDivergence(
                    case, point,
                    f"not bit-identical to [{base_point}]: {'; '.join(parts)}")
            if policy == "full":
                actual_mem = soc.storage.snapshot()
                if not np.array_equal(expected_mem, actual_mem):
                    raise FuzzDivergence(
                        case, point,
                        "memory image differs from oracle: "
                        + _first_diff(expected_mem, actual_mem))
                for engine, expected in zip(soc.last_engines,
                                            oracle_regs[num_engines]):
                    _compare_regfile(point, case, engine.name, expected,
                                     engine.regfile._vector)
            report.points.append(point)
    return report


# -------------------------------------------------------------- CLI driver
def fuzz_main(cases: int = 100, seed: int = 0, shrink: bool = True,
              corpus_dir: Optional[str] = None,
              max_cycles: int = 5_000_000, quiet: bool = False) -> int:
    """Run ``cases`` seeded random cases; shrink and report any divergence.

    Returns a process exit code: 0 clean, 1 divergence found, 2 harness
    could not run (hypothesis unavailable).
    """
    try:
        from hypothesis import HealthCheck, Phase, given
        from hypothesis import seed as hypothesis_seed
        from hypothesis import settings
    except ImportError:  # pragma: no cover - image always ships hypothesis
        print("repro fuzz needs the 'hypothesis' package; it is not installed")
        return 2
    from repro.fuzz.strategies import fuzz_cases

    executions = 0
    phases = [Phase.generate] + ([Phase.shrink] if shrink else [])

    @hypothesis_seed(seed)
    @settings(max_examples=cases, database=None, deadline=None,
              phases=phases, suppress_health_check=list(HealthCheck),
              print_blob=False)
    @given(case=fuzz_cases())
    def drive(case: FuzzCase) -> None:
        nonlocal executions
        executions += 1
        if not quiet and executions % 25 == 0:
            print(f"  ... {executions} case executions")
        run_fuzz_case(case, max_cycles=max_cycles)

    try:
        drive()
    except FuzzDivergence as failure:
        print(f"DIVERGENCE (shrunk={shrink}): {failure}")
        if corpus_dir is not None:
            path = save_corpus_case(
                failure.case, corpus_dir,
                note=f"divergence at [{failure.point}]: {failure.detail}")
            print(f"shrunk case written to {path}")
            print(f"replay with: repro fuzz --replay {path}")
        return 1
    if not quiet:
        print(f"fuzz: {cases} cases ({executions} executions incl. retries) "
              f"clean — every cube point matched the oracle")
    return 0


def replay_case(path: str, max_cycles: int = 5_000_000,
                quiet: bool = False) -> int:
    """Re-run one committed corpus case; exit code mirrors :func:`fuzz_main`."""
    from repro.fuzz.case import load_corpus_case

    case = load_corpus_case(path)
    try:
        report = run_fuzz_case(case, max_cycles=max_cycles)
    except FuzzDivergence as failure:
        print(f"DIVERGENCE: {failure}")
        return 1
    if not quiet:
        print(f"{case.describe()}: clean across {len(report.points)} points "
              f"({', '.join(report.points)})")
    return 0
