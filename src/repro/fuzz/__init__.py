"""Adversarial program fuzzing: random legal kernels vs a functional oracle.

The package has four layers:

* :mod:`repro.fuzz.case` — the serializable case description
  (:class:`~repro.fuzz.case.FuzzCase`), its normalization into concrete
  addresses/index arrays, and lowering into builder programs;
* :mod:`repro.fuzz.oracle` — a pure-python functional interpreter that
  predicts final memory and register-file contents with zero timing;
* :mod:`repro.fuzz.runner` — the differential harness that executes a case
  across the configuration cube (event/naive engine x scalar/batch datapath
  x FULL/ELIDE policy x 1/2 engines) and checks every point against the
  oracle and against each other;
* :mod:`repro.fuzz.strategies` — seeded hypothesis strategies over the
  case space (imported lazily so the core harness works without hypothesis,
  e.g. when replaying committed corpus cases).
"""

from repro.fuzz.case import (
    FuzzCase,
    OpSpec,
    build_case_programs,
    case_from_dict,
    case_to_dict,
    initialize_image,
    load_corpus_case,
    plan_case,
    save_corpus_case,
)
from repro.fuzz.oracle import interpret_program
from repro.fuzz.runner import FuzzDivergence, fuzz_main, run_fuzz_case

__all__ = [
    "FuzzCase",
    "OpSpec",
    "FuzzDivergence",
    "build_case_programs",
    "case_from_dict",
    "case_to_dict",
    "initialize_image",
    "interpret_program",
    "load_corpus_case",
    "plan_case",
    "run_fuzz_case",
    "save_corpus_case",
    "fuzz_main",
]
