"""Fast analytic bandwidth model cross-validated against the cycle model."""

from repro.perf.model import (
    ideal_indirect_utilization,
    ideal_narrow_utilization,
    estimate_strided_read_utilization,
    estimate_indirect_read_utilization,
)

__all__ = [
    "ideal_indirect_utilization",
    "ideal_narrow_utilization",
    "estimate_strided_read_utilization",
    "estimate_indirect_read_utilization",
]
