"""Beat-serialized analytic estimates of controller utilization.

These closed-form estimates capture the first-order mechanisms that the
cycle-level controller model simulates exactly:

* **narrow transfers** waste the bus in proportion to the element/bus ratio;
* **strided packed reads** are limited by bank conflicts among the parallel
  word fetches of a beat (the worst-loaded bank serializes the beat);
* **indirect packed reads** additionally share the word ports with index
  line fetches, bounding utilization at ``r / (r + 1)`` for an element-to-
  index size ratio ``r`` (paper §III-E).

They are used by property-based tests as an independent check on the
cycle-level simulator and by the analysis code to annotate plots with ideal
bounds.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.math import mean


def ideal_narrow_utilization(elem_bytes: int, bus_bytes: int) -> float:
    """Bus utilization of element-per-beat narrow transfers (BASE's limit)."""
    if elem_bytes <= 0 or bus_bytes <= 0 or elem_bytes > bus_bytes:
        raise ConfigurationError("element must fit in the bus")
    return elem_bytes / bus_bytes


def ideal_indirect_utilization(elem_bytes: int, index_bytes: int) -> float:
    """Upper bound on indirect-read utilization: ``r / (r + 1)``.

    One bus line of indices serves ``r = elem_bytes / index_bytes`` data
    beats, and index lines steal word-port cycles from data beats.
    """
    if elem_bytes <= 0 or index_bytes <= 0:
        raise ConfigurationError("element and index sizes must be positive")
    ratio = elem_bytes / index_bytes
    return ratio / (ratio + 1.0)


def strided_beat_conflict_factor(stride_elems: int, elem_bytes: int,
                                 bus_bytes: int, word_bytes: int,
                                 num_banks: int) -> float:
    """Average cycles needed to serve one packed strided beat.

    The beat's parallel word fetches are spread over the banks; the most
    heavily loaded bank determines the beat's service time.  Averaged over
    the beat phases of a long burst.
    """
    elems_per_beat = bus_bytes // elem_bytes
    words_per_elem = elem_bytes // word_bytes
    stride_words = stride_elems * words_per_elem
    factors = []
    # The bank pattern repeats with period lcm-ish; sampling a window of
    # beats is sufficient for an average.
    for beat in range(64):
        first_elem = beat * elems_per_beat
        word_addrs = []
        for local in range(elems_per_beat):
            base = (first_elem + local) * stride_words
            word_addrs.extend(base + w for w in range(words_per_elem))
        banks = np.asarray(word_addrs) % num_banks
        _, counts = np.unique(banks, return_counts=True)
        factors.append(counts.max())
    return float(mean(factors))


def estimate_strided_read_utilization(stride_elems: int, elem_bytes: int = 4,
                                      bus_bytes: int = 32, word_bytes: int = 4,
                                      num_banks: int = 17) -> float:
    """Analytic estimate of packed strided read utilization."""
    factor = strided_beat_conflict_factor(
        stride_elems, elem_bytes, bus_bytes, word_bytes, num_banks
    )
    return 1.0 / factor


def average_strided_read_utilization(strides: Iterable[int], elem_bytes: int = 4,
                                     bus_bytes: int = 32, word_bytes: int = 4,
                                     num_banks: int = 17) -> float:
    """Average utilization over a set of strides (Fig. 5b averages 0..63)."""
    values = [
        estimate_strided_read_utilization(
            stride, elem_bytes, bus_bytes, word_bytes, num_banks
        )
        for stride in strides
    ]
    return mean(values)


def estimate_indirect_read_utilization(elem_bytes: int = 4, index_bytes: int = 4,
                                       bus_bytes: int = 32, word_bytes: int = 4,
                                       num_banks: int = 17,
                                       random_conflict_penalty: Optional[float] = None,
                                       seed: int = 0) -> float:
    """Analytic estimate of packed indirect read utilization.

    Combines the port-sharing bound ``r / (r + 1)`` with the expected bank
    conflict factor of a beat whose word fetches target uniformly random
    banks (estimated by sampling, matching the random indices the paper's
    sensitivity study uses).
    """
    bound = ideal_indirect_utilization(elem_bytes, index_bytes)
    if random_conflict_penalty is None:
        rng = np.random.default_rng(seed)
        elems_per_beat = bus_bytes // elem_bytes
        words_per_elem = elem_bytes // word_bytes
        samples = []
        for _ in range(512):
            elem_words = rng.integers(0, 1 << 20, size=elems_per_beat) * words_per_elem
            word_addrs = (elem_words[:, None] + np.arange(words_per_elem)).ravel()
            banks = word_addrs % num_banks
            _, counts = np.unique(banks, return_counts=True)
            samples.append(counts.max())
        random_conflict_penalty = float(mean(samples))
    return bound / random_conflict_penalty * 1.0
