"""Command-line interface: list and run the paper's experiments.

Examples::

    axi-pack-repro list
    axi-pack-repro run fig3a --scale small
    axi-pack-repro run fig5c --csv fig5c.csv
    axi-pack-repro workloads --size 48
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.fig3 import SCALES
from repro.analysis.report import write_csv
from repro.system.config import SystemConfig
from repro.system.runner import compare_systems
from repro.version import __version__
from repro.workloads.registry import WORKLOAD_ORDER, make_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="axi-pack-repro",
        description="AXI-Pack (DATE 2023) reproduction: run the paper's experiments",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the reproducible figures")

    run_parser = subparsers.add_parser("run", help="run one figure's experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                            help="problem size for simulation-based experiments")
    run_parser.add_argument("--csv", help="also write the table to a CSV file")

    wl_parser = subparsers.add_parser(
        "workloads", help="run every workload on BASE/PACK/IDEAL and summarize"
    )
    wl_parser.add_argument("--size", type=int, default=48,
                           help="matrix dimension / sparse row count")
    wl_parser.add_argument("--no-verify", action="store_true",
                           help="skip checking results against references")
    return parser


def _cmd_list() -> int:
    print("Reproducible experiments (paper figure -> driver):")
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<6s} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    table = run_experiment(args.experiment, scale=args.scale)
    print(table.render())
    if args.csv:
        write_csv(table, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    config = SystemConfig()
    print(f"Running {len(WORKLOAD_ORDER)} workloads at size {args.size} "
          f"on BASE / PACK / IDEAL ({config.bus_bits}-bit bus, "
          f"{config.num_banks} banks)")
    for name in WORKLOAD_ORDER:
        comparison = compare_systems(
            lambda n=name: make_workload(n, size=args.size),
            config, verify=not args.no_verify,
        )
        print(f"  {name:<6s} speedup={comparison.pack_speedup:5.2f}x "
              f"(ideal {comparison.ideal_speedup:5.2f}x)  "
              f"R util base/pack/ideal = "
              f"{comparison.base.r_utilization:5.1%} / "
              f"{comparison.pack.r_utilization:5.1%} / "
              f"{comparison.ideal.r_utilization:5.1%}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "workloads":
        return _cmd_workloads(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
