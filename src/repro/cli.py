"""Command-line interface: list and run the paper's experiments.

Examples::

    axi-pack-repro list
    axi-pack-repro run fig3a --scale small --jobs 4
    axi-pack-repro run fig3a --scale paper --timing-only
    axi-pack-repro run fig5c --csv fig5c.csv
    axi-pack-repro run contention --engines 4 --csv contention.csv
    axi-pack-repro workloads --size 48 --jobs 8
    axi-pack-repro workloads --workloads csrspmv spmv --engines 2
    axi-pack-repro sweep fig3a fig5a --scale medium --jobs 8
    axi-pack-repro sweep all --no-cache
    axi-pack-repro pareto --jobs 4 --csv results/pareto.csv
    axi-pack-repro pareto --engines 1 2 --channels 1 2 4
    axi-pack-repro profile spmv --system pack --scale small --top 25
    axi-pack-repro cache --clear

``--engines N`` (run/sweep/workloads) simulates a multi-requestor SoC: N
vector engines share one adapter + banked memory behind a cycle-level AXI
multiplexer, and every workload's rows are sharded across the engines (the
``contention`` experiment sweeps this topology systematically).
``--channels M`` adds M memory channels (each its own adapter + banked
memory stack) behind an N×M stripe-interleaved crossbar; the ``pareto``
subcommand sweeps both axes and joins the measured performance with the
hardware area/energy models (see ``docs/hardware.md``).

``--timing-only`` selects ``DataPolicy.ELIDE``: the simulated datapath moves
no bytes, only geometry, which is markedly faster and produces bit-identical
cycle counts and statistics; result verification is skipped (``verified`` is
reported False).  Full and timing-only runs never share cache entries.

Simulation runs are orchestrated (see :mod:`repro.orchestrate`): ``--jobs N``
fans independent simulations out over ``N`` worker processes, and the result
cache under ``~/.cache/axi-pack-repro/`` (override with ``--cache-dir`` or
``$AXI_PACK_CACHE_DIR``) lets repeat invocations skip re-simulation.  The
``sweep`` subcommand caches by default; ``run`` and ``workloads`` keep their
classic uncached behavior unless ``--cache`` is given.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.fig3 import SCALES
from repro.analysis.report import write_csv
from repro.orchestrate import (
    ManifestError,
    ParallelRunner,
    ResultCache,
    RetryPolicy,
    SweepManifest,
    default_cache_dir,
    run_sweep,
)
from repro.system.config import SystemConfig
from repro.system.runner import compare_systems_many
from repro.version import __version__
from repro.workloads.registry import WORKLOAD_ORDER


def _add_orchestration_options(parser: argparse.ArgumentParser,
                               cache_default: bool,
                               topology: bool = True) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulation runs "
                             "(0 = one per CPU; default: 1, serial)")
    parser.add_argument("--timing-only", action="store_true",
                        help="simulate with DataPolicy.ELIDE: identical cycle "
                             "counts and statistics, no data movement, no "
                             "result verification (results are marked "
                             "verified=False); cached separately from full "
                             "runs")
    if topology:
        parser.add_argument("--engines", type=int, default=1, metavar="N",
                            help="vector engines per SoC: N > 1 shards each "
                                 "workload's rows across N engines sharing one "
                                 "memory system behind a cycle-level AXI mux "
                                 "(default: 1, the paper's topology)")
        parser.add_argument("--channels", type=int, default=1, metavar="M",
                            help="memory channels per SoC: M > 1 instantiates "
                                 "M adapter + banked-memory stacks behind an "
                                 "N×M stripe-interleaved crossbar (default: "
                                 "1, the paper's topology)")
    parser.add_argument("--arbitration", choices=["rr", "qos"], default="rr",
                        help="arbitration at each shared link: 'rr' "
                             "round-robin or 'qos' static priority, engine 0 "
                             "highest (default: rr)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="reuse cached simulation results and store new ones "
                             f"(default: {'on' if cache_default else 'off'})")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="result cache location, implies --cache unless "
                             f"--no-cache is given (default: {default_cache_dir()})")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per finished simulation run")
    parser.add_argument("--spec-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock timeout per simulation run when "
                             "jobs > 1: a hung worker is killed, the pool "
                             "rebuilt, and the run retried with backoff "
                             "(default: no timeout)")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="retry budget: at most N attempts per simulation "
                             "for retryable failures — its own timeouts and "
                             "transient errors (default: 3); worker deaths "
                             "are bounded separately by the pool-rebuild "
                             "budget")
    parser.add_argument("--journal", metavar="FILE",
                        help="write a JSON supervision report (per-run "
                             "attempts, durations, failure kinds, retry/"
                             "timeout counters) after the command")
    parser.set_defaults(cache_default=cache_default)


def _add_bus_fault_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject-bus-fault", metavar="JSON", default=None,
        help="inject deterministic bus faults from a JSON plan, e.g. "
             "'{\"faults\": [{\"kind\": \"slverr\", \"addr_lo\": 4096, "
             "\"addr_hi\": 8192}]}'; kinds: slverr, decerr, stall, lost "
             "(see repro.axi.faults).  Faulted runs abort with a structured "
             "fault report instead of verifying")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="axi-pack-repro",
        description="AXI-Pack (DATE 2023) reproduction: run the paper's experiments",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the reproducible figures")

    run_parser = subparsers.add_parser("run", help="run one figure's experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                            help="problem size for simulation-based experiments")
    run_parser.add_argument("--csv", help="also write the table to a CSV file")
    _add_bus_fault_option(run_parser)
    _add_orchestration_options(run_parser, cache_default=False)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run several experiments through one shared cache and pool"
    )
    sweep_parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                              help=f"figure ids to run ({', '.join(sorted(EXPERIMENTS))}) "
                                   "or 'all' (omit only with --resume)")
    sweep_parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                              help="problem size for simulation-based experiments")
    sweep_parser.add_argument("--csv-dir", metavar="DIR",
                              help="also write each table to DIR/<experiment>.csv")
    sweep_parser.add_argument("--json", action="store_true",
                              help="print a machine-readable JSON summary "
                                   "(tables, cache and supervision statistics) "
                                   "instead of text")
    manifest_group = sweep_parser.add_mutually_exclusive_group()
    manifest_group.add_argument("--manifest", metavar="FILE",
                                help="record sweep progress in a crash-"
                                     "consistent manifest so an interrupted "
                                     "sweep can be resumed (requires the "
                                     "persistent cache)")
    manifest_group.add_argument("--resume", metavar="FILE",
                                help="resume the sweep recorded in FILE: "
                                     "re-runs only the simulations whose "
                                     "results are not yet cached, using the "
                                     "experiments/scale/config recorded at "
                                     "--manifest time")
    _add_orchestration_options(sweep_parser, cache_default=True)

    wl_parser = subparsers.add_parser(
        "workloads", help="run every workload on BASE/PACK/IDEAL and summarize"
    )
    wl_parser.add_argument("--size", type=int, default=48,
                           help="matrix dimension / sparse row count")
    wl_parser.add_argument("--no-verify", action="store_true",
                           help="skip checking results against references")
    wl_parser.add_argument("--workloads", nargs="+", metavar="NAME",
                           default=None,
                           help="workloads to run; accepts any registry name "
                                "(default: the full registry — paper-figure "
                                "workloads first, then the extras the figure "
                                "grids exclude)")
    _add_bus_fault_option(wl_parser)
    _add_orchestration_options(wl_parser, cache_default=False)

    pareto_parser = subparsers.add_parser(
        "pareto",
        help="perf/area/energy Pareto sweep over engines × channels × system",
    )
    pareto_parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                               help="problem size for the swept workloads")
    pareto_parser.add_argument("--csv", help="also write the table to a CSV file")
    pareto_parser.add_argument("--engines", type=int, nargs="+", default=None,
                               metavar="N",
                               help="engine counts to sweep (default: 1 2 4)")
    pareto_parser.add_argument("--channels", type=int, nargs="+", default=None,
                               metavar="M",
                               help="memory-channel counts to sweep "
                                    "(default: 1 2 4)")
    pareto_parser.add_argument("--workloads", nargs="+", metavar="NAME",
                               default=None,
                               help="workloads to sweep (default: gemv spmv "
                                    "csrspmv)")
    _add_orchestration_options(pareto_parser, cache_default=True,
                               topology=False)

    profile_parser = subparsers.add_parser(
        "profile",
        help="cProfile one simulation grid point and print the hot functions",
    )
    from repro.workloads.registry import WORKLOADS

    profile_parser.add_argument("workload", choices=sorted(WORKLOADS),
                                help="workload to simulate")
    profile_parser.add_argument("--system", choices=["base", "pack", "ideal"],
                                default="pack", help="evaluation system")
    profile_parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                                help="problem scale (sets the workload size)")
    profile_parser.add_argument("--memory", choices=["sram", "dram"],
                                default="sram",
                                help="memory class (latency 1 or 100 cycles)")
    profile_parser.add_argument("--policy", choices=["full", "elide"],
                                default="full", help="data policy")
    profile_parser.add_argument("--datapath", choices=["batch", "scalar"],
                                default=None,
                                help="datapath mode (default: "
                                     "$REPRO_SIM_DATAPATH or batch)")
    profile_parser.add_argument("--top", type=int, default=25, metavar="N",
                                help="number of functions to report")
    profile_parser.add_argument("--sort", choices=["cumulative", "tottime"],
                                default="cumulative", help="pstats sort key")
    profile_parser.add_argument("--json", action="store_true",
                                help="machine-readable JSON instead of the "
                                     "pstats table")

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the result cache"
    )
    cache_parser.add_argument("--cache-dir", metavar="DIR",
                              help=f"cache location (default: {default_cache_dir()})")
    cache_parser.add_argument("--json", action="store_true",
                              help="print a machine-readable JSON summary")
    group = cache_parser.add_mutually_exclusive_group()
    group.add_argument("--clear", action="store_true",
                       help="delete every cache entry")
    group.add_argument("--prune", action="store_true",
                       help="delete entries from other package versions")

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential-fuzz random vector programs against the "
             "functional oracle across the whole configuration cube",
    )
    fuzz_parser.add_argument("--cases", type=int, default=100, metavar="N",
                             help="number of random cases (default: 100)")
    fuzz_parser.add_argument("--seed", type=int, default=0,
                             help="derivation seed for the case generator "
                                  "(default: 0)")
    fuzz_parser.add_argument("--shrink", action="store_true", default=True,
                             help="shrink a divergence to a minimal program "
                                  "(default)")
    fuzz_parser.add_argument("--no-shrink", dest="shrink",
                             action="store_false",
                             help="report the first divergence unshrunk")
    fuzz_parser.add_argument("--corpus-dir", metavar="DIR",
                             help="write shrunk divergences here as corpus "
                                  "JSON files")
    fuzz_parser.add_argument("--replay", metavar="FILE",
                             help="re-run one committed corpus case instead "
                                  "of generating new ones")
    fuzz_parser.add_argument("--max-cycles", type=int, default=5_000_000,
                             help="per-point simulation budget")
    fuzz_parser.add_argument("--quiet", action="store_true",
                             help="suppress progress output")

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically check the repo's hand-kept invariants (reprolint)",
    )
    lint_parser.add_argument("--json", action="store_true",
                             help="emit a machine-readable JSON report")
    lint_parser.add_argument("--rules", metavar="GROUPS",
                             help="comma-separated rule groups to run "
                                  "(default: all)")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print the rule catalog and exit")
    return parser


def _system_config(args: argparse.Namespace) -> SystemConfig:
    """The system configuration implied by the CLI flags."""
    from repro.sim.policy import DataPolicy

    kwargs = {}
    if getattr(args, "timing_only", False):
        kwargs["data_policy"] = DataPolicy.ELIDE
    if getattr(args, "engines", 1) != 1:
        kwargs["num_engines"] = args.engines
    if getattr(args, "channels", 1) != 1:
        kwargs["num_channels"] = args.channels
    if getattr(args, "arbitration", "rr") != "rr":
        kwargs["arbitration"] = args.arbitration
    plan = getattr(args, "inject_bus_fault", None)
    if plan:
        from repro.axi.faults import BusFaultPlan

        kwargs["bus_faults"] = BusFaultPlan.from_json(plan)
    return SystemConfig(**kwargs)


def _render_fault_report(result, indent: str = "    ") -> None:
    """Print one run's structured bus-fault report, one line per fault."""
    if not getattr(result, "fault_report", None):
        return
    kind = result.kind.value if hasattr(result.kind, "value") else result.kind
    for fault in result.fault_report["faults"]:
        print(f"{indent}{kind}: bus fault: {fault['kind']} op "
              f"{fault['op_index']} @ {fault['addr']:#x} -> {fault['resp']} "
              f"(engine {fault['engine']}, cycle {fault['cycle']}); "
              f"run aborted")


def _retry_policy(args: argparse.Namespace) -> RetryPolicy:
    kwargs = {}
    if getattr(args, "spec_timeout", None) is not None:
        kwargs["timeout_s"] = args.spec_timeout
    if getattr(args, "retries", None) is not None:
        kwargs["max_attempts"] = args.retries
    return RetryPolicy(**kwargs)


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    if args.cache is not None:  # explicit --cache / --no-cache wins
        enabled = args.cache
        if not enabled and args.cache_dir is not None:
            print("warning: --cache-dir is ignored with --no-cache",
                  file=sys.stderr)
    else:
        enabled = args.cache_default or args.cache_dir is not None
    cache = ResultCache(args.cache_dir) if enabled else None
    progress = None
    if args.progress:
        progress = lambda event: print(event.render(), file=sys.stderr)
    return ParallelRunner(jobs=args.jobs, cache=cache, progress=progress,
                          policy=_retry_policy(args))


def _write_journal(runner: ParallelRunner, path: Optional[str]) -> None:
    """Dump the runner's supervision journal (best effort, never fatal)."""
    if not path:
        return
    import json

    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(runner.journal(), handle, indent=2, sort_keys=True)
    except OSError as exc:
        print(f"warning: could not write journal {path}: {exc}",
              file=sys.stderr)


def _report_cache(runner: ParallelRunner) -> None:
    if runner.cache is not None:
        where = getattr(runner.cache, "cache_dir", "in-memory, nothing written to disk")
        print(f"cache: {runner.cache.stats.summary()} ({where})")


def _cmd_list() -> int:
    print("Reproducible experiments (paper figure -> driver):")
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<6s} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _system_config(args)
    if config.bus_faults is not None:
        print(f"note: bus-fault injection active "
              f"({len(config.bus_faults.faults)} spec(s), watchdog "
              f"{config.bus_faults.watchdog_cycles} cycles) — runs hit by a "
              f"fault abort gracefully and report verified=False")
    with _make_runner(args) as runner:
        table = run_experiment(args.experiment, scale=args.scale, runner=runner,
                               config=config)
        print(table.render())
        if args.csv:
            write_csv(table, args.csv)
            print(f"wrote {args.csv}")
        _report_cache(runner)
        _write_journal(runner, args.journal)
    return 0


def _apply_resume_request(args: argparse.Namespace, manifest: SweepManifest) -> int:
    """Overlay the sweep request recorded in ``manifest`` onto ``args``."""
    request = manifest.request
    if args.experiments:
        print("error: --resume replays the recorded experiment list; "
              "do not name experiments as well", file=sys.stderr)
        return 2
    if not request.get("experiments"):
        print(f"error: manifest {args.resume} records no experiments",
              file=sys.stderr)
        return 2
    args.experiments = list(request["experiments"])
    args.scale = request.get("scale", args.scale)
    args.timing_only = bool(request.get("timing_only", False))
    args.engines = request.get("engines", 1)
    args.channels = request.get("channels", 1)
    args.arbitration = request.get("arbitration", "rr")
    # Resume is only meaningful against the same persistent result cache.
    args.cache = True
    args.cache_dir = request.get("cache_dir") or args.cache_dir
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.errors import ConfigurationError
    from repro.orchestrate.cache import MemoryCache

    manifest: Optional[SweepManifest] = None
    if args.resume:
        try:
            manifest = SweepManifest.load(args.resume)
        except ManifestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        status = _apply_resume_request(args, manifest)
        if status:
            return status
        print(f"resuming sweep from {args.resume}: {manifest.summary()}",
              file=sys.stderr)
    elif not args.experiments:
        print("error: name at least one experiment (or use --resume)",
              file=sys.stderr)
        return 2

    with _make_runner(args) as runner:
        if args.manifest:
            if runner.cache is None or not hasattr(runner.cache, "cache_dir"):
                print("error: --manifest needs the persistent result cache; "
                      "drop --no-cache", file=sys.stderr)
                return 2
            manifest = SweepManifest.create(args.manifest, request={
                "experiments": list(args.experiments),
                "scale": args.scale,
                "timing_only": bool(getattr(args, "timing_only", False)),
                "engines": getattr(args, "engines", 1),
                "channels": getattr(args, "channels", 1),
                "arbitration": getattr(args, "arbitration", "rr"),
                # Absolute, so --resume works from any working directory.
                "cache_dir": os.path.abspath(str(runner.cache.cache_dir)),
            })
        runner.checkpoint = manifest
        if runner.cache is None:
            # Intra-sweep dedup even under --no-cache: identical runs across
            # the sweep's experiments execute once, nothing touches disk.
            runner.cache = MemoryCache()
        try:
            tables = run_sweep(args.experiments, scale=args.scale, runner=runner,
                               config=_system_config(args))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ManifestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            # The journal is most valuable precisely when the sweep died.
            _write_journal(runner, args.journal)
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
        for name, table in tables.items():
            if not args.json:
                print(table.render())
                print()
            if args.csv_dir:
                path = os.path.join(args.csv_dir, f"{name}.csv")
                write_csv(table, path)
                if not args.json:
                    print(f"wrote {path}")
        if args.json:
            stats = runner.cache.stats
            summary = {
                "scale": args.scale,
                "jobs": args.jobs,
                "experiments": {
                    name: {
                        "caption": table.caption,
                        "rows": len(table.rows),
                        "table": table.to_dicts(),
                    }
                    for name, table in tables.items()
                },
                "cache": {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "stores": stats.stores,
                    "corrupt": stats.corrupt,
                    "dir": getattr(runner.cache, "cache_dir", None),
                },
                "supervision": runner.counters.to_json(),
            }
            if manifest is not None:
                summary["manifest"] = {
                    "path": str(manifest.path),
                    "done": manifest.done_count(),
                    "pending": manifest.pending_count(),
                }
            print(json.dumps(summary, indent=2, sort_keys=True, default=str))
        else:
            print(f"swept {len(tables)} experiment{'s' if len(tables) != 1 else ''} "
                  f"at scale={args.scale} with jobs={args.jobs}")
            if manifest is not None:
                print(f"manifest: {manifest.summary()} ({manifest.path})")
            if runner.counters.any_activity():
                counters = runner.counters
                print(f"supervision: {counters.retries} retries, "
                      f"{counters.timeouts} timeouts, "
                      f"{counters.worker_losses} worker losses, "
                      f"{counters.pool_rebuilds} pool rebuilds")
            _report_cache(runner)
    return 0


def _registry_workload_order() -> List[str]:
    """Every registered workload: figure-grid names first, then the extras."""
    from repro.workloads.registry import all_workload_names

    return list(all_workload_names())


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.orchestrate.spec import WorkloadSpec
    from repro.workloads.registry import WORKLOADS

    names = args.workloads or _registry_workload_order()
    unknown = [name for name in names if name not in WORKLOADS]
    if unknown:
        print(f"error: unknown workload(s) {unknown}; "
              f"available: {sorted(WORKLOADS)}", file=sys.stderr)
        return 2
    config = _system_config(args)
    policy_note = " [timing-only]" if config.elides_data else ""
    if config.bus_faults is not None:
        policy_note += (
            f" [bus-fault injection: {len(config.bus_faults.faults)} spec(s), "
            f"watchdog {config.bus_faults.watchdog_cycles} cycles]"
        )
    engine_note = f", {config.num_engines} engines" if config.num_engines > 1 else ""
    if config.num_channels > 1:
        engine_note += f", {config.num_channels} channels"
    print(f"Running {len(names)} workloads at size {args.size} "
          f"on BASE / PACK / IDEAL ({config.bus_bits}-bit bus, "
          f"{config.num_banks} banks{engine_note}){policy_note}")
    extras = [name for name in names if name not in WORKLOAD_ORDER]
    if extras:
        print("  note: excluded from the paper-figure grids (fig3*/fig4c run "
              f"WORKLOAD_ORDER only): {', '.join(extras)}")
    specs = [WorkloadSpec.create(name, size=args.size) for name in names]
    with _make_runner(args) as runner:
        comparisons = compare_systems_many(
            specs, config, verify=not args.no_verify and not config.elides_data,
            runner=runner,
        )
        for name in names:
            comparison = comparisons[name]
            print(f"  {name:<8s} speedup={comparison.pack_speedup:5.2f}x "
                  f"(ideal {comparison.ideal_speedup:5.2f}x)  "
                  f"R util base/pack/ideal = "
                  f"{comparison.base.r_utilization:5.1%} / "
                  f"{comparison.pack.r_utilization:5.1%} / "
                  f"{comparison.ideal.r_utilization:5.1%}")
            for result in (comparison.base, comparison.pack, comparison.ideal):
                _render_fault_report(result)
        _report_cache(runner)
        _write_journal(runner, args.journal)
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.analysis.pareto import figure_pareto
    from repro.sim.policy import DataPolicy
    from repro.workloads.registry import WORKLOADS

    if args.workloads:
        unknown = [name for name in args.workloads if name not in WORKLOADS]
        if unknown:
            print(f"error: unknown workload(s) {unknown}; "
                  f"available: {sorted(WORKLOADS)}", file=sys.stderr)
            return 2
    kwargs = {}
    if args.timing_only:
        kwargs["data_policy"] = DataPolicy.ELIDE
    if args.arbitration != "rr":
        kwargs["arbitration"] = args.arbitration
    config = SystemConfig(**kwargs)
    with _make_runner(args) as runner:
        pareto_kwargs = {}
        if args.workloads:
            pareto_kwargs["workloads"] = tuple(args.workloads)
        table = figure_pareto(
            scale=args.scale, config=config, engines=args.engines,
            channels=args.channels, runner=runner, **pareto_kwargs,
        )
        print(table.render())
        if args.csv:
            write_csv(table, args.csv)
            print(f"wrote {args.csv}")
        _report_cache(runner)
        _write_journal(runner, args.journal)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile a single grid point: the one-command "where does time go"."""
    import cProfile
    import io
    import json
    import pstats
    import time

    from repro.analysis.headline import (
        MEMORY_LATENCY,
        point_system_config,
        workload_spec_kwargs,
    )
    from repro.axi.transaction import reset_txn_ids
    from repro.orchestrate.spec import WorkloadSpec
    from repro.sim.datapath import datapath_override
    from repro.system.config import SystemKind
    from repro.system.soc import build_system

    spec_kwargs = workload_spec_kwargs(args.workload, args.scale)
    latency = MEMORY_LATENCY[args.memory]
    with datapath_override(args.datapath) as datapath:
        reset_txn_ids()
        instance = WorkloadSpec.create(args.workload, **spec_kwargs).build()
        config = point_system_config(
            SystemKind(args.system), latency, args.policy
        )
        soc = build_system(config)
        instance.initialize(soc.storage)
        program = instance.build_program(config.lowering, config.vector_config())
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        cycles, _result = soc.run_program(program)
        profiler.disable()
        wall = time.perf_counter() - start

    stats = pstats.Stats(profiler)
    if args.json:
        sort_index = {"cumulative": 3, "tottime": 2}[args.sort]
        rows = []
        for (filename, line, func), (cc, nc, tottime, cumtime, _callers) in (
            stats.stats.items()  # type: ignore[attr-defined]
        ):
            rows.append({
                "function": func,
                "file": filename,
                "line": line,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            })
        key = "cumtime_s" if sort_index == 3 else "tottime_s"
        rows.sort(key=lambda row: row[key], reverse=True)
        print(json.dumps({
            "workload": args.workload,
            "system": args.system,
            "scale": args.scale,
            "memory": args.memory,
            "policy": args.policy,
            "datapath": datapath.value,
            "cycles": cycles,
            "wall_s": round(wall, 6),
            "cycles_per_sec": round(cycles / wall, 1) if wall > 0 else None,
            "top": rows[: args.top],
        }, indent=2))
        return 0
    print(f"profiled {args.workload}/{args.system}/{args.memory} at "
          f"scale={args.scale} policy={args.policy} "
          f"datapath={datapath.value}: {cycles} cycles in {wall:.3f}s "
          f"({cycles / wall:,.0f} cycles/sec)")
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(args.sort).print_stats(
        args.top
    )
    print(buffer.getvalue())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    cache = ResultCache(args.cache_dir)
    if args.json:
        summary = {"cache_dir": str(cache.cache_dir)}
        if args.clear:
            summary["removed"] = cache.clear()
        elif args.prune:
            summary["pruned"] = cache.prune()
        summary["entries"] = len(cache)
        summary["corrupt"] = cache.corrupt_entries()
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if args.clear:
        print(f"removed {cache.clear()} entries from {cache.cache_dir}")
    elif args.prune:
        print(f"pruned {cache.prune()} stale entries from {cache.cache_dir}")
    else:
        print(f"cache dir: {cache.cache_dir}")
        print(f"entries:   {len(cache)}")
        corrupt = cache.corrupt_entries()
        if corrupt:
            print(f"corrupt:   {corrupt} quarantined .corrupt "
                  f"file{'s' if corrupt != 1 else ''} (prune or clear to "
                  f"delete)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.runner import fuzz_main, replay_case

    if args.replay:
        return replay_case(args.replay, max_cycles=args.max_cycles,
                           quiet=args.quiet)
    return fuzz_main(cases=args.cases, seed=args.seed, shrink=args.shrink,
                     corpus_dir=args.corpus_dir, max_cycles=args.max_cycles,
                     quiet=args.quiet)


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint against the checkout this package was imported from.

    ``tools.reprolint`` lives next to ``src/`` in the repository, not inside
    the package, so locate the repo root first: prefer the manifest found by
    walking up from the working directory, fall back to the checkout that
    holds this module.  Outside a checkout there is nothing to lint.
    """
    import pathlib

    import repro

    root = None
    for candidate in (pathlib.Path.cwd(), *pathlib.Path.cwd().resolve().parents):
        if (candidate / "tools" / "reprolint" / "manifest.json").exists():
            root = candidate
            break
    if root is None:
        source_root = pathlib.Path(repro.__file__).resolve().parents[2]
        if (source_root / "tools" / "reprolint" / "manifest.json").exists():
            root = source_root
    if root is None:
        print("error: repro lint needs a repository checkout "
              "(tools/reprolint/manifest.json not found)", file=sys.stderr)
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.reprolint.cli import main as lint_main

    forwarded: List[str] = ["--root", str(root)]
    if args.json:
        forwarded.append("--json")
    if args.rules:
        forwarded.extend(["--rules", args.rules])
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from repro.errors import ConfigurationError, DeadlockError

    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "workloads":
            return _cmd_workloads(args)
        if args.command == "pareto":
            return _cmd_pareto(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except DeadlockError as exc:
        # The diagnosis names the stuck components/queues and blames the
        # fullest undrained queue — render it instead of a bare traceback.
        print("error: simulation deadlocked", file=sys.stderr)
        if exc.diagnosis is not None:
            print(exc.diagnosis.render(), file=sys.stderr)
        else:
            print(str(exc), file=sys.stderr)
        return 3
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
