"""Evaluation systems: BASE, PACK and IDEAL SoC models (paper §III-A)."""

from repro.sim.policy import DataPolicy
from repro.system.config import SystemConfig, SystemKind
from repro.system.soc import Soc, build_system
from repro.system.results import SystemRunResult
from repro.system.runner import (
    compare_systems,
    compare_systems_many,
    run_workload,
    run_workload_all_systems,
)

__all__ = [
    "DataPolicy",
    "SystemConfig",
    "SystemKind",
    "Soc",
    "build_system",
    "SystemRunResult",
    "run_workload",
    "run_workload_all_systems",
    "compare_systems",
    "compare_systems_many",
]
