"""SoC assembly: wires the vector engine to the right memory system."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.axi.port import AxiPort, AxiPortConfig
from repro.controller.adapter import AxiPackAdapter
from repro.errors import ConfigurationError
from repro.mem.banked import BankedMemory
from repro.mem.ideal import IdealMemoryEndpoint
from repro.mem.storage import MemoryStorage
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.system.config import SystemConfig, SystemKind
from repro.vector.builder import Program
from repro.vector.engine import EngineResult, VectorEngine


class Soc:
    """One instantiated evaluation system.

    A :class:`Soc` owns the memory image (so workloads can initialize their
    data before running and inspect it afterwards) and builds a fresh
    simulation engine for every program executed on it.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.data_policy = config.data_policy
        self.storage = MemoryStorage(config.memory_bytes)
        self.stats = StatsRegistry()
        self.port = AxiPort("cpu", config.bus_bytes, AxiPortConfig())
        if config.kind is SystemKind.IDEAL:
            self.memory = None
            self.endpoint = IdealMemoryEndpoint(
                "ideal_mem", self.port, self.storage,
                latency=config.ideal_latency, stats=self.stats,
                data_policy=self.data_policy,
            )
        else:
            self.memory = BankedMemory(
                "banked_mem", config.memory_config(), self.storage, self.stats,
                data_policy=self.data_policy,
            )
            self.endpoint = AxiPackAdapter(
                "adapter", self.port, self.memory, config.adapter_config(),
                self.stats, data_policy=self.data_policy,
            )

    @property
    def kind(self) -> SystemKind:
        """Which of the three evaluation systems this is."""
        return self.config.kind

    def run_program(
        self,
        program: Program,
        max_cycles: int = 50_000_000,
        event_driven: Optional[bool] = None,
    ) -> Tuple[int, EngineResult]:
        """Execute a vector program to completion; return (cycles, result).

        ``event_driven`` selects the engine mode (None = the
        ``REPRO_SIM_ENGINE`` environment default).  The event-driven mode
        skips globally idle windows and produces identical cycle counts and
        statistics; ``event_driven=False`` forces the seed tick-every-cycle
        behaviour for A/B comparisons (see ``benchmarks/bench_headline.py``).
        """
        if program.mode is not self.config.lowering:
            raise ConfigurationError(
                f"program was built for the {program.mode.value.upper()} system "
                f"but this SoC is {self.kind.value.upper()}"
            )
        engine = Engine(event_driven=event_driven)
        vector = VectorEngine(
            "ara", program, self.port, self.config.vector_config(),
            self.config.lowering, data_policy=self.data_policy,
            storage=self.storage,
        )
        # Registration wires the wake machinery: each component subscribes to
        # the queues named by its ``wake_queues`` (the AXI port channels, the
        # banked memory's request/response queues), and registered queues act
        # as the engine's dirty/wake lists.
        engine.add_component(vector)
        engine.add_component(self.endpoint)
        if self.memory is not None:
            engine.add_component(self.memory)
            for queue in self.memory.all_queues():
                engine.add_queue(queue)
        for queue in self.port.all_queues():
            engine.add_queue(queue)
        cycles = engine.run_until(vector.done, max_cycles=max_cycles)
        return cycles, vector.result(cycles)


def build_system(config: SystemConfig) -> Soc:
    """Instantiate the SoC described by ``config``."""
    return Soc(config)
