"""SoC assembly: wires the vector engine(s) to the right memory system(s).

Topologies
----------
With ``num_engines == 1, num_channels == 1`` (the paper's evaluation
systems) the vector engine's AXI port connects *directly* to the adapter /
ideal endpoint — byte-identical wiring, cycle counts and statistics to the
single-requestor model this repo always had.

With ``num_engines == N > 1`` and one channel the SoC instantiates N vector
engines, each with a private AXI port, merged onto one shared endpoint port
by a cycle-level :class:`~repro.axi.mux.CycleAxiMux` (round-robin or QoS
arbitration on AR/AW, transaction-id routed R/B returns, W beats in AW
order).  The adapter and banked memory are shared, which is what makes the
contention/fairness scenario family measurable: N requestors fighting over
one packed bus and one bank crossbar.

With ``num_channels == M > 1`` the SoC becomes a full M×N crossbar: each
engine fans out through a private :class:`~repro.axi.mux.CycleAxiDemux`
over an N×M grid of link ports, and each memory channel merges its N links
through a private :class:`~repro.axi.mux.CycleAxiMux` into its own adapter
+ :class:`~repro.mem.banked.BankedMemory` stack (or ideal endpoint).
Channels are selected by stripe-interleaved address decode
(:class:`~repro.axi.interconnect.InterleavedAddressMap`): consecutive
``channel_stripe_bytes`` stripes rotate across channels, so every channel
carries a share of every workload.  All channel stacks share ONE functional
:class:`~repro.mem.storage.MemoryStorage` image — channels split *timing*,
not data — and each channel keeps a private stats registry so
:meth:`Soc.stats_snapshot` can report both per-channel (``chan{j}.``) and
summed counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.axi.mux import CycleAxiDemux, CycleAxiMux
from repro.axi.port import AxiPort, AxiPortConfig
from repro.controller.adapter import AxiPackAdapter
from repro.errors import ConfigurationError, SimulationError
from repro.mem.banked import BankedMemory
from repro.mem.ideal import IdealMemoryEndpoint
from repro.mem.storage import MemoryStorage
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.system.config import SystemConfig, SystemKind
from repro.vector.builder import Program
from repro.vector.engine import EngineResult, VectorEngine


class Soc:
    """One instantiated evaluation system.

    A :class:`Soc` owns the memory image (so workloads can initialize their
    data before running and inspect it afterwards) and builds a fresh
    simulation engine for every program executed on it.  Component state
    and statistics are reset at the start of every run, so back-to-back
    ``run_program`` calls on one :class:`Soc` report identical measurements
    (the memory image is deliberately *not* reset — workloads own it).

    Attribute conventions: ``endpoints`` / ``memories`` always list every
    channel stack; the historical single-channel aliases ``endpoint`` /
    ``memory`` point at the one stack when ``num_channels == 1`` and are
    ``None`` on multi-channel SoCs.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.data_policy = config.data_policy
        self.num_engines = config.num_engines
        self.num_channels = config.num_channels
        self.storage = MemoryStorage(config.memory_bytes)
        self.stats = StatsRegistry()
        #: Vector engines from the most recent ``run_programs`` call, kept so
        #: harnesses can inspect final register-file state.  Empty until the
        #: first run.
        self.last_engines: List[VectorEngine] = []
        #: JSON-serializable fault report of the most recent run, or ``None``
        #: when the run completed fault-free (always ``None`` until the first
        #: run).  See :meth:`run_programs`.
        self.last_fault_report: Optional[Dict] = None
        #: crossbar pieces; all empty on single-channel SoCs
        self.demuxes: List[CycleAxiDemux] = []
        self.channel_muxes: List[CycleAxiMux] = []
        self.channel_ports: List[AxiPort] = []
        self.link_ports: List[List[AxiPort]] = []
        self.channel_stats: List[StatsRegistry] = []
        if config.num_engines == 1:
            # Direct wiring: the seed topology, bit-identical to the
            # single-requestor model (no mux hop on any channel).
            self.port = AxiPort("cpu", config.bus_bytes, AxiPortConfig())
            self.ports: List[AxiPort] = [self.port]
            self.mux: Optional[CycleAxiMux] = None
        else:
            self.ports = [
                AxiPort(f"cpu{index}", config.bus_bytes, AxiPortConfig())
                for index in range(config.num_engines)
            ]
            self.mux = None
        if config.num_channels == 1:
            if config.num_engines > 1:
                #: the shared endpoint-side port behind the mux
                self.port = AxiPort("shared", config.bus_bytes, AxiPortConfig())
                self.mux = CycleAxiMux(
                    "mux", self.ports, self.port,
                    arbitration=config.arbitration, stats=self.stats,
                )
            memory, endpoint = self._build_channel_stack("", self.port, self.stats)
            self.memory = memory
            self.endpoint = endpoint
            self.memories: List[BankedMemory] = [] if memory is None else [memory]
            self.endpoints: List = [endpoint]
        else:
            address_map = config.channel_address_map()
            self.channel_ports = [
                AxiPort(f"chan{index}", config.bus_bytes, AxiPortConfig())
                for index in range(config.num_channels)
            ]
            self.link_ports = [
                [
                    AxiPort(f"xb{row}_{col}", config.bus_bytes, AxiPortConfig())
                    for col in range(config.num_channels)
                ]
                for row in range(config.num_engines)
            ]
            # One demux per engine; check_straddle=False because interleaved
            # routing deliberately uses stripe-ownership semantics (route by
            # start address; the owning channel serves the whole burst).
            self.demuxes = [
                CycleAxiDemux(
                    f"xdemux{index}", self.ports[index], self.link_ports[index],
                    address_map, stats=self.stats, check_straddle=False,
                    bus_faults=config.bus_faults,
                )
                for index in range(config.num_engines)
            ]
            self.channel_stats = [
                StatsRegistry() for _ in range(config.num_channels)
            ]
            self.channel_muxes = [
                CycleAxiMux(
                    f"xmux{col}",
                    [self.link_ports[row][col]
                     for row in range(config.num_engines)],
                    self.channel_ports[col],
                    arbitration=config.arbitration,
                    stats=self.channel_stats[col],
                )
                for col in range(config.num_channels)
            ]
            self.memories = []
            self.endpoints = []
            for col in range(config.num_channels):
                memory, endpoint = self._build_channel_stack(
                    str(col), self.channel_ports[col], self.channel_stats[col]
                )
                if memory is not None:
                    self.memories.append(memory)
                self.endpoints.append(endpoint)
            self.memory = None
            self.endpoint = None

    def _build_channel_stack(
        self, suffix: str, port: AxiPort, stats: StatsRegistry
    ) -> Tuple[Optional[BankedMemory], Union[AxiPackAdapter, IdealMemoryEndpoint]]:
        """One memory channel: adapter + banked memory, or ideal endpoint.

        Every stack serves the shared ``self.storage`` image; ``stats`` is
        the registry the stack's components count into (the SoC-wide one for
        single-channel SoCs, a private per-channel one on the crossbar).
        """
        config = self.config
        if config.kind is SystemKind.IDEAL:
            endpoint = IdealMemoryEndpoint(
                f"ideal_mem{suffix}", port, self.storage,
                latency=config.ideal_latency, stats=stats,
                data_policy=self.data_policy, bus_faults=config.bus_faults,
            )
            return None, endpoint
        memory = BankedMemory(
            f"banked_mem{suffix}", config.memory_config(), self.storage, stats,
            data_policy=self.data_policy, bus_faults=config.bus_faults,
        )
        endpoint = AxiPackAdapter(
            f"adapter{suffix}", port, memory, config.adapter_config(),
            stats, data_policy=self.data_policy,
        )
        return memory, endpoint

    @property
    def kind(self) -> SystemKind:
        """Which of the three evaluation systems this is."""
        return self.config.kind

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> Dict[str, int]:
        """Flat statistics for the most recent run.

        Single-channel SoCs return the registry's counters unchanged — the
        exact mapping every pre-crossbar consumer saw.  Multi-channel SoCs
        merge the per-channel registries: each counter appears summed across
        channels under its bare name (so topology-agnostic consumers keep
        working) *and* per channel under a ``chan{j}.`` prefix (so analyses
        can measure channel balance).
        """
        merged: Dict[str, int] = dict(self.stats.as_dict())
        for index, stats in enumerate(self.channel_stats):
            for name, value in stats.as_dict().items():
                merged[name] = merged.get(name, 0) + value
                merged[f"chan{index}.{name}"] = value
        return merged

    # ------------------------------------------------------------------ runs
    def _all_ports(self) -> List[AxiPort]:
        """Every AXI port in the topology (engine, shared, link, channel)."""
        ports = list(self.ports)
        if self.mux is not None:
            ports.append(self.port)
        for row in self.link_ports:
            ports.extend(row)
        ports.extend(self.channel_ports)
        return ports

    def _reset_for_run(self) -> None:
        """Restore every reusable piece of the SoC to its post-build state.

        Statistics, component state (adapter converters, channel monitors,
        arbitration pointers, bank round-robin state) and the AXI channel
        queues are all owned by the :class:`Soc` and survive across runs;
        without this reset a second ``run_program`` on the same SoC would
        accumulate stats across runs and could observe stale queue state.
        A run that completed normally leaves every queue drained — anything
        else means the previous run was aborted mid-flight, which the reset
        recovers from by clearing the queues (the memory image is left
        untouched either way).
        """
        self.stats.reset()
        for stats in self.channel_stats:
            stats.reset()
        for endpoint in self.endpoints:
            endpoint.reset()
        for memory in self.memories:
            memory.reset()
        if self.mux is not None:
            self.mux.reset()
        for demux in self.demuxes:
            demux.reset()
        for mux in self.channel_muxes:
            mux.reset()
        for port in self._all_ports():
            for queue in port.all_queues():
                if not queue.is_empty():
                    queue.clear()

    def _check_drained(self) -> None:
        """Assert the per-run queue contract: every channel ends empty."""
        stuck = [
            queue.name
            for port in self._all_ports()
            for queue in port.all_queues()
            if not queue.is_empty()
        ]
        if stuck:
            raise SimulationError(
                f"run completed with undrained AXI channel queues: {stuck}"
            )

    def run_program(
        self,
        program: Union[Program, Sequence[Program]],
        max_cycles: int = 50_000_000,
        event_driven: Optional[bool] = None,
    ) -> Tuple[int, Union[EngineResult, List[EngineResult]]]:
        """Execute vector program(s) to completion; return (cycles, result).

        ``program`` is either a single :class:`Program` (single-engine SoCs;
        the result is one :class:`EngineResult`, exactly the historical API)
        or a sequence of per-engine programs, one per vector engine (the
        result is a list of per-engine :class:`EngineResult` in engine
        order).  ``event_driven`` selects the engine mode (None = the
        ``REPRO_SIM_ENGINE`` environment default); both modes produce
        identical cycle counts and statistics.
        """
        if isinstance(program, Program):
            if self.num_engines != 1:
                raise ConfigurationError(
                    f"this SoC has {self.num_engines} engines; pass one "
                    "program per engine (see Workload.build_sharded_programs)"
                )
            cycles, results = self.run_programs([program], max_cycles, event_driven)
            return cycles, results[0]
        return self.run_programs(list(program), max_cycles, event_driven)

    def run_programs(
        self,
        programs: Sequence[Program],
        max_cycles: int = 50_000_000,
        event_driven: Optional[bool] = None,
    ) -> Tuple[int, List[EngineResult]]:
        """Execute one program per vector engine; return (cycles, results).

        Whatever the topology — direct wiring, N engines muxed onto one
        shared channel, or the full N×M demux/mux crossbar — this registers
        every component and AXI queue of the instantiated system with a
        fresh simulation engine and runs until all vector engines retire
        their programs.  Per-run statistics land in the SoC-wide registry
        plus, on multi-channel SoCs, one private registry per channel; read
        them through :meth:`stats_snapshot`.
        """
        if len(programs) != self.num_engines:
            raise ConfigurationError(
                f"got {len(programs)} programs for {self.num_engines} engines"
            )
        for program in programs:
            if program.mode is not self.config.lowering:
                raise ConfigurationError(
                    f"program was built for the {program.mode.value.upper()} "
                    f"system but this SoC is {self.kind.value.upper()}"
                )
        self._reset_for_run()
        engine = Engine(event_driven=event_driven)
        vector_config = self.config.vector_config()
        if self.num_engines == 1:
            names = ["ara"]
        else:
            names = [f"ara{index}" for index in range(self.num_engines)]
        # The per-transaction watchdog exists only while a fault plan is
        # attached; fault-free runs carry zero watchdog state.
        bus_faults = self.config.bus_faults
        watchdog = 0 if bus_faults is None else bus_faults.watchdog_cycles
        vectors = [
            VectorEngine(
                name, program, port, vector_config,
                self.config.lowering, data_policy=self.data_policy,
                storage=self.storage, watchdog_cycles=watchdog,
            )
            for name, program, port in zip(names, programs, self.ports)
        ]
        # Kept for post-run inspection (the fuzz harness compares register
        # files against the functional oracle after the run completes).
        self.last_engines: List[VectorEngine] = vectors
        # Registration wires the wake machinery: each component subscribes to
        # the queues named by its ``wake_queues`` (the AXI port channels, the
        # banked memories' request/response queues), and registered queues
        # act as the engine's dirty/wake lists.
        for vector in vectors:
            engine.add_component(vector)
        if self.mux is not None:
            engine.add_component(self.mux)
        for demux in self.demuxes:
            engine.add_component(demux)
        for mux in self.channel_muxes:
            engine.add_component(mux)
        for endpoint in self.endpoints:
            engine.add_component(endpoint)
        for memory in self.memories:
            engine.add_component(memory)
            for queue in memory.all_queues():
                engine.add_queue(queue)
        for port in self.ports:
            for queue in port.all_queues():
                engine.add_queue(queue)
        if self.mux is not None:
            for queue in self.port.all_queues():
                engine.add_queue(queue)
        for row in self.link_ports:
            for port in row:
                for queue in port.all_queues():
                    engine.add_queue(queue)
        for port in self.channel_ports:
            for queue in port.all_queues():
                engine.add_queue(queue)
        if len(vectors) == 1:
            done = vectors[0].done
        else:
            def done() -> bool:
                return all(vector.done() for vector in vectors)
        cycles = engine.run_until(done, max_cycles=max_cycles)
        faults = [
            fault.to_dict() for vector in vectors for fault in vector.faults
        ]
        if faults:
            # Aborted run: the engines quiesced (their own in-flight bursts
            # drained) but interconnect/endpoint components may hold residual
            # state for abandoned transactions; ``_reset_for_run`` clears it
            # before the next run, so the SoC stays reusable.
            self.last_fault_report = {"faults": faults}
        else:
            self.last_fault_report = None
            self._check_drained()
        return cycles, [vector.result(cycles) for vector in vectors]


def build_system(config: SystemConfig) -> Soc:
    """Instantiate the SoC described by ``config``."""
    return Soc(config)
