"""SoC assembly: wires the vector engine(s) to the right memory system.

Topologies
----------
With ``num_engines == 1`` (the paper's evaluation systems) the vector
engine's AXI port connects *directly* to the adapter / ideal endpoint —
byte-identical wiring, cycle counts and statistics to the single-requestor
model this repo always had.

With ``num_engines == N > 1`` the SoC instantiates N vector engines, each
with a private AXI port, merged onto one shared endpoint port by a
cycle-level :class:`~repro.axi.mux.CycleAxiMux` (round-robin or QoS
arbitration on AR/AW, transaction-id routed R/B returns, W beats in AW
order).  The adapter and banked memory are shared, which is what makes the
contention/fairness scenario family measurable: N requestors fighting over
one packed bus and one bank crossbar.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.axi.mux import CycleAxiMux
from repro.axi.port import AxiPort, AxiPortConfig
from repro.controller.adapter import AxiPackAdapter
from repro.errors import ConfigurationError, SimulationError
from repro.mem.banked import BankedMemory
from repro.mem.ideal import IdealMemoryEndpoint
from repro.mem.storage import MemoryStorage
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.system.config import SystemConfig, SystemKind
from repro.vector.builder import Program
from repro.vector.engine import EngineResult, VectorEngine


class Soc:
    """One instantiated evaluation system.

    A :class:`Soc` owns the memory image (so workloads can initialize their
    data before running and inspect it afterwards) and builds a fresh
    simulation engine for every program executed on it.  Component state
    and statistics are reset at the start of every run, so back-to-back
    ``run_program`` calls on one :class:`Soc` report identical measurements
    (the memory image is deliberately *not* reset — workloads own it).
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.data_policy = config.data_policy
        self.num_engines = config.num_engines
        self.storage = MemoryStorage(config.memory_bytes)
        self.stats = StatsRegistry()
        #: Vector engines from the most recent ``run_programs`` call, kept so
        #: harnesses can inspect final register-file state.  Empty until the
        #: first run.
        self.last_engines: List[VectorEngine] = []
        if config.num_engines == 1:
            # Direct wiring: the seed topology, bit-identical to the
            # single-requestor model (no mux hop on any channel).
            self.port = AxiPort("cpu", config.bus_bytes, AxiPortConfig())
            self.ports: List[AxiPort] = [self.port]
            self.mux: Optional[CycleAxiMux] = None
        else:
            self.ports = [
                AxiPort(f"cpu{index}", config.bus_bytes, AxiPortConfig())
                for index in range(config.num_engines)
            ]
            #: the shared endpoint-side port behind the mux
            self.port = AxiPort("shared", config.bus_bytes, AxiPortConfig())
            self.mux = CycleAxiMux(
                "mux", self.ports, self.port,
                arbitration=config.arbitration, stats=self.stats,
            )
        if config.kind is SystemKind.IDEAL:
            self.memory = None
            self.endpoint = IdealMemoryEndpoint(
                "ideal_mem", self.port, self.storage,
                latency=config.ideal_latency, stats=self.stats,
                data_policy=self.data_policy,
            )
        else:
            self.memory = BankedMemory(
                "banked_mem", config.memory_config(), self.storage, self.stats,
                data_policy=self.data_policy,
            )
            self.endpoint = AxiPackAdapter(
                "adapter", self.port, self.memory, config.adapter_config(),
                self.stats, data_policy=self.data_policy,
            )

    @property
    def kind(self) -> SystemKind:
        """Which of the three evaluation systems this is."""
        return self.config.kind

    # ------------------------------------------------------------------ runs
    def _reset_for_run(self) -> None:
        """Restore every reusable piece of the SoC to its post-build state.

        Statistics, component state (adapter converters, channel monitors,
        arbitration pointers, bank round-robin state) and the AXI channel
        queues are all owned by the :class:`Soc` and survive across runs;
        without this reset a second ``run_program`` on the same SoC would
        accumulate stats across runs and could observe stale queue state.
        A run that completed normally leaves every queue drained — anything
        else means the previous run was aborted mid-flight, which the reset
        recovers from by clearing the queues (the memory image is left
        untouched either way).
        """
        self.stats.reset()
        self.endpoint.reset()
        if self.memory is not None:
            self.memory.reset()
        if self.mux is not None:
            self.mux.reset()
        ports = self.ports if self.mux is None else [*self.ports, self.port]
        for port in ports:
            for queue in port.all_queues():
                if not queue.is_empty():
                    queue.clear()

    def _check_drained(self) -> None:
        """Assert the per-run queue contract: every channel ends empty."""
        ports = self.ports if self.mux is None else [*self.ports, self.port]
        stuck = [
            queue.name
            for port in ports
            for queue in port.all_queues()
            if not queue.is_empty()
        ]
        if stuck:
            raise SimulationError(
                f"run completed with undrained AXI channel queues: {stuck}"
            )

    def run_program(
        self,
        program: Union[Program, Sequence[Program]],
        max_cycles: int = 50_000_000,
        event_driven: Optional[bool] = None,
    ) -> Tuple[int, Union[EngineResult, List[EngineResult]]]:
        """Execute vector program(s) to completion; return (cycles, result).

        ``program`` is either a single :class:`Program` (single-engine SoCs;
        the result is one :class:`EngineResult`, exactly the historical API)
        or a sequence of per-engine programs, one per vector engine (the
        result is a list of per-engine :class:`EngineResult` in engine
        order).  ``event_driven`` selects the engine mode (None = the
        ``REPRO_SIM_ENGINE`` environment default); both modes produce
        identical cycle counts and statistics.
        """
        if isinstance(program, Program):
            if self.num_engines != 1:
                raise ConfigurationError(
                    f"this SoC has {self.num_engines} engines; pass one "
                    "program per engine (see Workload.build_sharded_programs)"
                )
            cycles, results = self.run_programs([program], max_cycles, event_driven)
            return cycles, results[0]
        return self.run_programs(list(program), max_cycles, event_driven)

    def run_programs(
        self,
        programs: Sequence[Program],
        max_cycles: int = 50_000_000,
        event_driven: Optional[bool] = None,
    ) -> Tuple[int, List[EngineResult]]:
        """Execute one program per vector engine; return (cycles, results)."""
        if len(programs) != self.num_engines:
            raise ConfigurationError(
                f"got {len(programs)} programs for {self.num_engines} engines"
            )
        for program in programs:
            if program.mode is not self.config.lowering:
                raise ConfigurationError(
                    f"program was built for the {program.mode.value.upper()} "
                    f"system but this SoC is {self.kind.value.upper()}"
                )
        self._reset_for_run()
        engine = Engine(event_driven=event_driven)
        vector_config = self.config.vector_config()
        if self.num_engines == 1:
            names = ["ara"]
        else:
            names = [f"ara{index}" for index in range(self.num_engines)]
        vectors = [
            VectorEngine(
                name, program, port, vector_config,
                self.config.lowering, data_policy=self.data_policy,
                storage=self.storage,
            )
            for name, program, port in zip(names, programs, self.ports)
        ]
        # Kept for post-run inspection (the fuzz harness compares register
        # files against the functional oracle after the run completes).
        self.last_engines: List[VectorEngine] = vectors
        # Registration wires the wake machinery: each component subscribes to
        # the queues named by its ``wake_queues`` (the AXI port channels, the
        # banked memory's request/response queues), and registered queues act
        # as the engine's dirty/wake lists.
        for vector in vectors:
            engine.add_component(vector)
        if self.mux is not None:
            engine.add_component(self.mux)
        engine.add_component(self.endpoint)
        if self.memory is not None:
            engine.add_component(self.memory)
            for queue in self.memory.all_queues():
                engine.add_queue(queue)
        for port in self.ports:
            for queue in port.all_queues():
                engine.add_queue(queue)
        if self.mux is not None:
            for queue in self.port.all_queues():
                engine.add_queue(queue)
        if len(vectors) == 1:
            done = vectors[0].done
        else:
            def done() -> bool:
                return all(vector.done() for vector in vectors)
        cycles = engine.run_until(done, max_cycles=max_cycles)
        self._check_drained()
        return cycles, [vector.result(cycles) for vector in vectors]


def build_system(config: SystemConfig) -> Soc:
    """Instantiate the SoC described by ``config``."""
    return Soc(config)
