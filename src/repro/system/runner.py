"""High-level helpers to run workloads on the evaluation systems."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.system.config import SystemConfig, SystemKind
from repro.system.results import SystemRunResult, WorkloadComparison
from repro.system.soc import build_system


def run_workload(
    workload,
    config: Optional[SystemConfig] = None,
    kind: Optional[SystemKind] = None,
    verify: bool = True,
    max_cycles: int = 50_000_000,
) -> SystemRunResult:
    """Run one workload on one system and return the measurements.

    Parameters
    ----------
    workload:
        Any object implementing the :class:`repro.workloads.base.Workload`
        protocol (``initialize``, ``build_program``, ``verify``).
    config:
        System configuration; defaults to the paper's 256-bit / 17-bank PACK
        system.  ``kind`` overrides the configuration's system kind.
    verify:
        If True, the workload's results in simulated memory are checked
        against its reference implementation after the run.
    """
    config = config or SystemConfig()
    if kind is not None:
        config = config.with_kind(kind)
    soc = build_system(config)
    workload.initialize(soc.storage)
    program = workload.build_program(config.lowering, config.vector_config())
    cycles, engine_result = soc.run_program(program, max_cycles=max_cycles)
    verified = workload.verify(soc.storage) if verify else None
    return SystemRunResult(
        workload=workload.name,
        kind=config.kind,
        cycles=cycles,
        engine=engine_result,
        stats=soc.stats.as_dict(),
        verified=verified,
    )


def run_workload_all_systems(
    workload_factory,
    config: Optional[SystemConfig] = None,
    kinds: Iterable[SystemKind] = (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL),
    verify: bool = True,
    max_cycles: int = 50_000_000,
) -> Dict[SystemKind, SystemRunResult]:
    """Run a workload on several systems.

    ``workload_factory`` is called once per system so each run gets a fresh
    workload instance (system-specific dataflow choices happen inside the
    workload's ``build_program``).
    """
    config = config or SystemConfig()
    results: Dict[SystemKind, SystemRunResult] = {}
    for kind in kinds:
        workload = workload_factory()
        results[kind] = run_workload(
            workload, config, kind=kind, verify=verify, max_cycles=max_cycles
        )
    return results


def compare_systems(
    workload_factory,
    config: Optional[SystemConfig] = None,
    verify: bool = True,
    max_cycles: int = 50_000_000,
) -> WorkloadComparison:
    """Run a workload on BASE, PACK and IDEAL and package the comparison."""
    results = run_workload_all_systems(
        workload_factory, config, verify=verify, max_cycles=max_cycles
    )
    sample = next(iter(results.values()))
    return WorkloadComparison(
        workload=sample.workload,
        base=results[SystemKind.BASE],
        pack=results[SystemKind.PACK],
        ideal=results[SystemKind.IDEAL],
    )
