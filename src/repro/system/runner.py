"""High-level helpers to run workloads on the evaluation systems.

Multi-run helpers (``run_workload_all_systems``, ``compare_systems``,
``compare_systems_many``) submit their runs through the
:mod:`repro.orchestrate` layer: pass a
:class:`~repro.orchestrate.spec.WorkloadSpec` (instead of a factory
callable) and a :class:`~repro.orchestrate.parallel.ParallelRunner` to get
result caching and multi-core fan-out.  Plain callables are still accepted
for backwards compatibility and run serially, uncached — a closure can be
neither hashed for the cache nor pickled to a worker process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.system.config import SystemConfig, SystemKind
from repro.system.results import SystemRunResult, WorkloadComparison
from repro.system.soc import build_system

#: The three systems every comparison covers, in the paper's order.
ALL_KINDS = (SystemKind.BASE, SystemKind.PACK, SystemKind.IDEAL)


def run_workload(
    workload,
    config: Optional[SystemConfig] = None,
    kind: Optional[SystemKind] = None,
    verify: bool = True,
    max_cycles: int = 50_000_000,
) -> SystemRunResult:
    """Run one workload on one system and return the measurements.

    Parameters
    ----------
    workload:
        Any object implementing the :class:`repro.workloads.base.Workload`
        protocol (``initialize``, ``build_program``, ``verify``).
    config:
        System configuration; defaults to the paper's 256-bit / 17-bank PACK
        system.  ``kind`` overrides the configuration's system kind.
    verify:
        If True, the workload's results in simulated memory are checked
        against its reference implementation after the run.  Under
        ``DataPolicy.ELIDE`` no results exist to check: verification is
        skipped regardless and the result is explicitly marked
        ``verified=False``.
    """
    from repro.vector.engine import EngineResult

    config = config or SystemConfig()
    if kind is not None:
        config = config.with_kind(kind)
    soc = build_system(config)
    workload.initialize(soc.storage)
    if config.num_engines == 1:
        program = workload.build_program(config.lowering, config.vector_config())
        cycles, engine_result = soc.run_program(program, max_cycles=max_cycles)
        engines = None
    else:
        # Multi-engine topology: the sharded driver splits the workload's
        # rows/segments into one program per engine over the shared image.
        programs = workload.build_sharded_programs(
            config.lowering, config.vector_config(), config.num_engines
        )
        cycles, engines = soc.run_programs(programs, max_cycles=max_cycles)
        engine_result = EngineResult.aggregate(engines, cycles)
    fault_report = soc.last_fault_report
    if config.elides_data or fault_report is not None:
        # Nothing to check (ELIDE) or the run aborted mid-program (bus
        # faults): either way the memory image cannot match the reference.
        verified: Optional[bool] = False
    else:
        verified = workload.verify(soc.storage) if verify else None
    return SystemRunResult(
        workload=workload.name,
        kind=config.kind,
        cycles=cycles,
        engine=engine_result,
        # Merged snapshot: identical to the raw registry on single-channel
        # SoCs; adds chan{j}.-prefixed per-channel counters on the crossbar.
        stats=soc.stats_snapshot(),
        verified=verified,
        engines=engines,
        fault_report=fault_report,
    )


def _as_workload_spec(workload):
    """Return a ``WorkloadSpec`` if ``workload`` is one, else ``None``."""
    from repro.orchestrate.spec import WorkloadSpec

    return workload if isinstance(workload, WorkloadSpec) else None


def run_workload_all_systems(
    workload_factory,
    config: Optional[SystemConfig] = None,
    kinds: Iterable[SystemKind] = ALL_KINDS,
    verify: bool = True,
    max_cycles: int = 50_000_000,
    runner=None,
) -> Dict[SystemKind, SystemRunResult]:
    """Run a workload on several systems.

    ``workload_factory`` is either a
    :class:`~repro.orchestrate.spec.WorkloadSpec` (orchestrated: cacheable
    and parallelizable via ``runner``) or a zero-argument callable returning
    a fresh workload per system (legacy: serial, uncached).
    """
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import RunSpec

    config = config or SystemConfig()
    kinds = tuple(kinds)
    spec = _as_workload_spec(workload_factory)
    if spec is not None:
        runner = runner or ParallelRunner()
        specs = [
            RunSpec(workload=spec, config=config, kind=kind,
                    verify=verify, max_cycles=max_cycles)
            for kind in kinds
        ]
        return dict(zip(kinds, runner.run(specs)))
    results: Dict[SystemKind, SystemRunResult] = {}
    for kind in kinds:
        workload = workload_factory()
        results[kind] = run_workload(
            workload, config, kind=kind, verify=verify, max_cycles=max_cycles
        )
    return results


def compare_systems(
    workload_factory,
    config: Optional[SystemConfig] = None,
    verify: bool = True,
    max_cycles: int = 50_000_000,
    runner=None,
) -> WorkloadComparison:
    """Run a workload on BASE, PACK and IDEAL and package the comparison."""
    results = run_workload_all_systems(
        workload_factory, config, verify=verify, max_cycles=max_cycles,
        runner=runner,
    )
    sample = next(iter(results.values()))
    return WorkloadComparison(
        workload=sample.workload,
        base=results[SystemKind.BASE],
        pack=results[SystemKind.PACK],
        ideal=results[SystemKind.IDEAL],
    )


def compare_systems_many(
    workload_specs: Sequence,
    config: Optional[SystemConfig] = None,
    verify: bool = True,
    max_cycles: int = 50_000_000,
    runner=None,
) -> Dict[str, WorkloadComparison]:
    """BASE/PACK/IDEAL comparisons for many workloads in one batch.

    All ``len(workload_specs) * 3`` runs are submitted to the runner as a
    single batch, so with ``--jobs N`` the whole grid fans out at once
    instead of parallelizing only within one workload's three systems.
    Returns comparisons keyed by workload name, in input order.
    """
    from repro.errors import ConfigurationError
    from repro.orchestrate.parallel import ParallelRunner
    from repro.orchestrate.spec import RunSpec

    names = [spec.name for spec in workload_specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            "compare_systems_many keys its result by workload name; "
            f"duplicate names in {names} would silently drop comparisons"
        )
    config = config or SystemConfig()
    runner = runner or ParallelRunner()
    specs: List[RunSpec] = [
        RunSpec(workload=spec, config=config, kind=kind,
                verify=verify, max_cycles=max_cycles)
        for spec in workload_specs
        for kind in ALL_KINDS
    ]
    results = runner.run(specs)
    comparisons: Dict[str, WorkloadComparison] = {}
    for index, spec in enumerate(workload_specs):
        base, pack, ideal = results[index * len(ALL_KINDS):(index + 1) * len(ALL_KINDS)]
        comparisons[spec.name] = WorkloadComparison(
            workload=base.workload, base=base, pack=pack, ideal=ideal,
        )
    return comparisons
