"""System-level configuration for the three evaluation SoCs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.axi.faults import BusFaultPlan
from repro.controller.context import AdapterConfig
from repro.errors import ConfigurationError
from repro.mem.banked import BankedMemoryConfig
from repro.sim.policy import DataPolicy, default_data_policy, resolve_data_policy
from repro.utils.bitutils import is_power_of_two
from repro.vector.config import LoweringMode, VectorEngineConfig


class SystemKind(enum.Enum):
    """The three systems compared in the paper's evaluation.

    * ``BASE``  — unmodified CVA6 + Ara over a standard AXI4 bus to a regular
      banked memory.
    * ``PACK``  — AXI-Pack-extended Ara, AXI-Pack bus, and the banked memory
      behind the AXI-Pack controller.
    * ``IDEAL`` — unmodified Ara connected to an exclusive idealized memory
      with perfect packing, bandwidth and latency (upper bound).
    """

    BASE = "base"
    PACK = "pack"
    IDEAL = "ideal"

    @property
    def lowering(self) -> LoweringMode:
        """The VLSU lowering mode this system uses."""
        return LoweringMode(self.value)


@dataclass(frozen=True)
class SystemConfig:
    """Every parameter needed to instantiate one evaluation system.

    The defaults reproduce the paper's configuration: a 256-bit bus (eight
    64-bit lanes), 32-bit memory words, 17 banks, FP32 elements and
    decoupling queues of depth four.

    ``data_policy`` selects how much of the data plane the simulation
    materializes (see :mod:`repro.sim.policy`): ``FULL`` moves real bytes
    end to end and supports result verification; ``ELIDE`` is timing-only
    with bit-identical cycle counts and statistics.  The default honours
    ``$REPRO_DATA_POLICY``; a policy name string (``"elide"``) is accepted
    and coerced.

    ``num_engines`` and ``num_channels`` select the SoC topology: with the
    defaults (``1`` × ``1``) the vector engine connects directly to the
    memory system, exactly as in the paper's evaluation.  With ``N > 1``
    engines and one channel, N vector engines share one adapter + banked
    memory behind a cycle-level N:1 multiplexer
    (:class:`repro.axi.mux.CycleAxiMux`) using the ``arbitration`` policy
    (``"rr"`` round-robin or ``"qos"`` static priority, port 0 highest).
    With ``M > 1`` channels the SoC instantiates M adapter + banked-memory
    (or ideal-endpoint) stacks behind an N×M demux/mux crossbar with
    stripe-interleaved routing: consecutive ``channel_stripe_bytes`` stripes
    of the address space rotate across the channels
    (:class:`repro.axi.interconnect.InterleavedAddressMap`), and each
    channel arbitrates its own links with the same ``arbitration`` policy.
    """

    kind: SystemKind = SystemKind.PACK
    bus_bytes: int = 32
    word_bytes: int = 4
    num_banks: int = 17
    queue_depth: int = 4
    memory_bytes: int = 1 << 24
    memory_latency: int = 1
    ideal_latency: int = 2
    vector: Optional[VectorEngineConfig] = None
    data_policy: Union[DataPolicy, str] = field(default_factory=default_data_policy)
    num_engines: int = 1
    arbitration: str = "rr"
    num_channels: int = 1
    channel_stripe_bytes: int = 1024
    #: Deterministic bus-level fault injection (see :mod:`repro.axi.faults`).
    #: ``None`` — the default — injects nothing and arms no watchdog, keeping
    #: fault-free runs bit-identical to the pre-fault-injection simulator.  A
    #: plan (or its JSON form) threads itself through every memory endpoint
    #: and crossbar demux and arms the engines' per-transaction watchdog.
    bus_faults: Optional[BusFaultPlan] = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.bus_bytes):
            raise ConfigurationError("bus width must be a power of two in bytes")
        if self.bus_bytes < self.word_bytes:
            raise ConfigurationError("bus must be at least one word wide")
        if self.num_engines < 1:
            raise ConfigurationError("a SoC needs at least one vector engine")
        if self.arbitration not in ("rr", "qos"):
            raise ConfigurationError(
                f"unknown arbitration {self.arbitration!r}; choose 'rr' or 'qos'"
            )
        if self.num_channels < 1:
            raise ConfigurationError("a SoC needs at least one memory channel")
        if not is_power_of_two(self.channel_stripe_bytes):
            raise ConfigurationError(
                "channel stripe size must be a power of two in bytes"
            )
        if self.channel_stripe_bytes < self.bus_bytes:
            raise ConfigurationError(
                "channel stripe must be at least one bus beat wide"
            )
        if self.memory_bytes < self.num_channels * self.channel_stripe_bytes:
            raise ConfigurationError(
                "memory smaller than one stripe per channel; shrink the "
                "stripe or the channel count"
            )
        if not isinstance(self.data_policy, DataPolicy):
            try:
                resolved = resolve_data_policy(self.data_policy)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None
            object.__setattr__(self, "data_policy", resolved)
        if self.bus_faults is not None and not isinstance(
            self.bus_faults, BusFaultPlan
        ):
            # Accept the JSON form (dict or string) for CLI/config ergonomics.
            object.__setattr__(
                self, "bus_faults", BusFaultPlan.from_json(self.bus_faults)
            )

    # ------------------------------------------------------------ derived
    @property
    def bus_bits(self) -> int:
        """Bus width in bits (64, 128 or 256 in the paper's sweeps)."""
        return self.bus_bytes * 8

    @property
    def lanes(self) -> int:
        """Vector lane count implied by the bus width (paper: D/32)."""
        return self.bus_bytes // self.word_bytes

    @property
    def lowering(self) -> LoweringMode:
        """VLSU lowering mode of this system."""
        return self.kind.lowering

    def vector_config(self) -> VectorEngineConfig:
        """The vector engine configuration (derived unless overridden)."""
        if self.vector is not None:
            return self.vector
        return VectorEngineConfig(lanes=self.lanes, bus_bytes=self.bus_bytes)

    def adapter_config(self) -> AdapterConfig:
        """The AXI-Pack adapter configuration for this system."""
        return AdapterConfig(
            bus_bytes=self.bus_bytes,
            word_bytes=self.word_bytes,
            queue_depth=self.queue_depth,
        )

    def memory_config(self) -> BankedMemoryConfig:
        """The banked memory configuration for this system."""
        return BankedMemoryConfig(
            num_ports=self.bus_bytes // self.word_bytes,
            num_banks=self.num_banks,
            word_bytes=self.word_bytes,
            latency=self.memory_latency,
            request_queue_depth=self.queue_depth,
            response_queue_depth=self.queue_depth,
        )

    @property
    def elides_data(self) -> bool:
        """True when the datapath runs timing-only (``DataPolicy.ELIDE``)."""
        return self.data_policy.elides_data

    def with_kind(self, kind: SystemKind) -> "SystemConfig":
        """A copy of this configuration targeting a different system kind."""
        return replace(self, kind=kind)

    def with_data_policy(self, policy: Union[DataPolicy, str]) -> "SystemConfig":
        """A copy of this configuration under a different data policy."""
        return replace(self, data_policy=resolve_data_policy(policy))

    def with_engines(self, num_engines: int,
                     arbitration: Optional[str] = None) -> "SystemConfig":
        """A copy of this configuration with a different requestor count."""
        if arbitration is None:
            return replace(self, num_engines=num_engines)
        return replace(self, num_engines=num_engines, arbitration=arbitration)

    def with_bus_faults(
        self, plan: Optional[Union[BusFaultPlan, dict, str]]
    ) -> "SystemConfig":
        """A copy of this configuration under a different fault plan."""
        if plan is not None and not isinstance(plan, BusFaultPlan):
            plan = BusFaultPlan.from_json(plan)
        return replace(self, bus_faults=plan)

    def with_channels(self, num_channels: int,
                      stripe_bytes: Optional[int] = None) -> "SystemConfig":
        """A copy of this configuration with a different channel count."""
        if stripe_bytes is None:
            return replace(self, num_channels=num_channels)
        return replace(self, num_channels=num_channels,
                       channel_stripe_bytes=stripe_bytes)

    def channel_address_map(self):
        """The stripe-interleaved decode the crossbar routes channels by."""
        from repro.axi.interconnect import InterleavedAddressMap

        return InterleavedAddressMap(
            num_targets=self.num_channels,
            stripe_bytes=self.channel_stripe_bytes,
            size_bytes=self.memory_bytes,
        )
