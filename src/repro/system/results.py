"""Result records produced by system simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.system.config import SystemKind
from repro.vector.engine import EngineResult


@dataclass
class SystemRunResult:
    """Everything measured when one workload ran on one system.

    For multi-engine runs ``engine`` holds the aggregate measurement
    (traffic summed over every engine's requestor port, see
    :meth:`EngineResult.aggregate`) and ``engines`` the per-engine breakdown
    in engine order; single-engine runs leave ``engines`` as ``None``.  In
    the serialized/JSON form ``engines`` follows the same convention: a
    list of per-engine records when the topology has several engines,
    absent otherwise.

    ``fault_report`` is ``None`` for a clean run; a run aborted by bus
    faults (injected or organic) carries the SoC's JSON-serializable report
    (``{"faults": [...]}``, one record per failing memory op — see
    :class:`repro.vector.engine.BusFault`) and is never marked verified.

    ``stats`` is the SoC's merged counter snapshot.  On multi-channel
    (crossbar) topologies it carries each counter twice: summed across
    channels under the bare name and per memory channel under a
    ``chan{j}.`` prefix (see :meth:`repro.system.soc.Soc.stats_snapshot`);
    single-channel runs carry only the bare names.
    """

    workload: str
    kind: SystemKind
    cycles: int
    engine: EngineResult
    stats: Mapping[str, float] = field(default_factory=dict)
    verified: Optional[bool] = None
    engines: Optional[List[EngineResult]] = None
    fault_report: Optional[Dict] = None

    @property
    def faulted(self) -> bool:
        """True when the run was aborted by bus faults."""
        return self.fault_report is not None

    @property
    def num_engines(self) -> int:
        """How many vector engines produced this result."""
        return 1 if self.engines is None else len(self.engines)

    @property
    def r_utilization(self) -> float:
        """R bus utilization including index traffic."""
        return self.engine.r_utilization

    @property
    def r_utilization_no_index(self) -> float:
        """R bus utilization excluding index traffic."""
        return self.engine.r_utilization_no_index

    @property
    def w_utilization(self) -> float:
        """W bus utilization."""
        return self.engine.w_utilization

    def speedup_over(self, baseline: "SystemRunResult") -> float:
        """Speedup of this run relative to ``baseline`` (same workload)."""
        if self.cycles == 0:
            return float("inf")
        return baseline.cycles / self.cycles

    def summary(self) -> str:
        """One-line human-readable summary."""
        verified = {True: "ok", False: "MISMATCH", None: "unchecked"}[self.verified]
        if self.faulted:
            verified = f"ABORTED:{len(self.fault_report['faults'])} fault(s)"
        return (
            f"{self.workload:<8s} {self.kind.value:<5s} cycles={self.cycles:>9d} "
            f"Rutil={self.r_utilization:6.1%} Rutil(data)={self.r_utilization_no_index:6.1%} "
            f"[{verified}]"
        )


@dataclass
class WorkloadComparison:
    """BASE / PACK / IDEAL results for one workload, with derived metrics."""

    workload: str
    base: SystemRunResult
    pack: SystemRunResult
    ideal: SystemRunResult

    @property
    def pack_speedup(self) -> float:
        """PACK speedup over BASE (the paper's headline metric)."""
        return self.pack.speedup_over(self.base)

    @property
    def ideal_speedup(self) -> float:
        """IDEAL speedup over BASE (the upper bound)."""
        return self.ideal.speedup_over(self.base)

    @property
    def pack_fraction_of_ideal(self) -> float:
        """How close PACK gets to the IDEAL performance."""
        if self.ideal.cycles == 0:
            return 0.0
        return self.ideal.cycles / self.pack.cycles

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the reporting code."""
        return {
            "workload": self.workload,
            "base_cycles": self.base.cycles,
            "pack_cycles": self.pack.cycles,
            "ideal_cycles": self.ideal.cycles,
            "pack_speedup": self.pack_speedup,
            "ideal_speedup": self.ideal_speedup,
            "pack_fraction_of_ideal": self.pack_fraction_of_ideal,
            "base_r_util": self.base.r_utilization,
            "base_r_util_no_index": self.base.r_utilization_no_index,
            "pack_r_util": self.pack.r_utilization,
            "ideal_r_util": self.ideal.r_utilization,
            "ideal_r_util_no_index": self.ideal.r_utilization_no_index,
        }
