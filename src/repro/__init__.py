"""AXI-Pack reproduction library.

This package reproduces the system described in *AXI-Pack: Near-Memory Bus
Packing for Bandwidth-Efficient Irregular Workloads* (DATE 2023) as a
functional, cycle-approximate bandwidth model written in pure Python + numpy.

The main entry points are:

* :mod:`repro.axi` — the AXI4 / AXI-Pack protocol model (burst descriptors,
  user-field encoding, channel monitors, interconnect blocks).
* :mod:`repro.controller` — the banked AXI-Pack memory controller with its
  five burst converters.
* :mod:`repro.vector` — the Ara-like vector engine with the paper's
  ``vlimxei``/``vsimxei`` extensions.
* :mod:`repro.system` — the BASE / PACK / IDEAL system-on-chip models and the
  simulation runner.
* :mod:`repro.workloads` — the six evaluation kernels (ismt, gemv, trmv,
  spmv, pagerank, sssp) and their data generators.
* :mod:`repro.hw` — calibrated area / timing / energy models.
* :mod:`repro.analysis` — one experiment driver per paper figure.
* :mod:`repro.orchestrate` — cacheable run specs and the parallel runner
  behind the CLI's ``--jobs`` / ``--cache`` / ``sweep`` features.

Quick start::

    from repro.system import SystemKind, run_workload
    from repro.workloads import make_workload

    wl = make_workload("gemv", size=64)
    result = run_workload(wl, kind=SystemKind.PACK)
    print(result.cycles, result.r_utilization)
"""

from repro.version import __version__

__all__ = ["__version__"]
