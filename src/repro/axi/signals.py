"""Per-beat channel records for the five AXI channels.

These records are what flows through :class:`~repro.sim.queue.DecoupledQueue`
instances in the cycle-level simulator.  They carry only the fields the
bandwidth model needs; side-band signals with no performance impact (QoS,
region, cache, prot, lock) are omitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.axi.types import BurstType, Resp


@dataclass
class ARBeat:
    """One AR-channel handshake: a read request."""

    txn_id: int
    addr: int
    num_beats: int
    beat_bytes: int
    burst: BurstType = BurstType.INCR
    user: int = 0

    def __post_init__(self) -> None:
        if self.num_beats < 1:
            raise ValueError("ARBeat num_beats must be >= 1")


@dataclass
class AWBeat:
    """One AW-channel handshake: a write request."""

    txn_id: int
    addr: int
    num_beats: int
    beat_bytes: int
    burst: BurstType = BurstType.INCR
    user: int = 0

    def __post_init__(self) -> None:
        if self.num_beats < 1:
            raise ValueError("AWBeat num_beats must be >= 1")


@dataclass
class RBeat:
    """One R-channel handshake: a read data beat.

    ``useful_bytes`` records how many of the bus bytes carry payload the
    requestor asked for; the channel monitor uses it to compute the packed
    bus utilization that Figs. 3 and 5 report.
    """

    txn_id: int
    data: Optional[np.ndarray]
    useful_bytes: int
    last: bool
    resp: Resp = Resp.OKAY


@dataclass
class WBeat:
    """One W-channel handshake: a write data beat."""

    data: Optional[np.ndarray]
    useful_bytes: int
    last: bool
    strb: Optional[np.ndarray] = None


@dataclass
class BBeat:
    """One B-channel handshake: a write response."""

    txn_id: int
    resp: Resp = Resp.OKAY
