"""Bundled five-channel AXI port used to connect requestors and endpoints.

An :class:`AxiPort` owns one :class:`~repro.sim.queue.DecoupledQueue` per AXI
channel.  The requestor pushes AR/AW/W and pops R/B; the endpoint does the
opposite.  Queue depths model the channel buffering of the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.axi.signals import BBeat, RBeat, WBeat
from repro.axi.transaction import BusRequest
from repro.sim.queue import DecoupledQueue


@dataclass
class AxiPortConfig:
    """Depths of the per-channel queues of an :class:`AxiPort`."""

    ar_depth: int = 4
    aw_depth: int = 4
    w_depth: int = 8
    r_depth: int = 8
    b_depth: int = 4


class AxiPort:
    """One requestor-to-endpoint AXI connection (five channels).

    The request channels carry full :class:`~repro.axi.transaction.BusRequest`
    objects rather than raw AR/AW beats: the decoded request is exactly what
    an RTL endpoint reconstructs from the address/len/size/user fields, and
    carrying it avoids re-decoding on every hop.  ``to_channel_beat`` remains
    available for code that wants the wire-level view.
    """

    def __init__(self, name: str, bus_bytes: int,
                 config: Optional[AxiPortConfig] = None) -> None:
        config = config or AxiPortConfig()
        self.name = name
        self.bus_bytes = bus_bytes
        self.config = config
        self.ar: DecoupledQueue[BusRequest] = DecoupledQueue(f"{name}.AR", config.ar_depth)
        self.aw: DecoupledQueue[BusRequest] = DecoupledQueue(f"{name}.AW", config.aw_depth)
        self.w: DecoupledQueue[WBeat] = DecoupledQueue(f"{name}.W", config.w_depth)
        self.r: DecoupledQueue[RBeat] = DecoupledQueue(f"{name}.R", config.r_depth)
        self.b: DecoupledQueue[BBeat] = DecoupledQueue(f"{name}.B", config.b_depth)

    def all_queues(self) -> List[DecoupledQueue]:
        """Every channel queue (for engine registration)."""
        return [self.ar, self.aw, self.w, self.r, self.b]

    def is_idle(self) -> bool:
        """True when no channel holds any beat."""
        return all(queue.is_empty() for queue in self.all_queues())
