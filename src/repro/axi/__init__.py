"""AXI4 + AXI-Pack protocol model.

This package models the part of the paper that is the actual contribution:
the AXI-Pack extension to ARM's AXI4 on-chip protocol (paper §II-A).

The model is *beat accurate*: it represents requests (AR/AW), data beats
(R/W) and write responses (B) as Python records, enforces the AXI4 legality
rules that matter for bandwidth (burst length, 4 KiB crossing, narrow
transfers), and adds the AXI-Pack ``user``-field encoding that turns a burst
into a bus-packed strided or indirect stream.
"""

from repro.axi.types import (
    AXI4_MAX_BURST_LEN,
    AXI4_BOUNDARY_BYTES,
    BurstType,
    Resp,
    bytes_to_axsize,
    axsize_to_bytes,
)
from repro.axi.pack import PackMode, PackUserField, PackUserLayout
from repro.axi.signals import ARBeat, AWBeat, BBeat, RBeat, WBeat
from repro.axi.stream import (
    ContiguousStream,
    IndirectStream,
    Stream,
    StridedStream,
)
from repro.axi.transaction import BusRequest
from repro.axi.builder import RequestBuilder
from repro.axi.monitor import ChannelMonitor
from repro.axi.mux import CycleAxiDemux, CycleAxiMux

__all__ = [
    "AXI4_MAX_BURST_LEN",
    "AXI4_BOUNDARY_BYTES",
    "BurstType",
    "Resp",
    "bytes_to_axsize",
    "axsize_to_bytes",
    "PackMode",
    "PackUserField",
    "PackUserLayout",
    "ARBeat",
    "AWBeat",
    "RBeat",
    "WBeat",
    "BBeat",
    "Stream",
    "ContiguousStream",
    "StridedStream",
    "IndirectStream",
    "BusRequest",
    "RequestBuilder",
    "ChannelMonitor",
    "CycleAxiMux",
    "CycleAxiDemux",
]
