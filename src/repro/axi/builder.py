"""Lowering of memory streams to legal AXI4 / AXI-Pack bursts.

The :class:`RequestBuilder` is the piece of the VLSU that decides *how* a
vector memory access travels over the bus:

* On the **BASE** system, contiguous accesses become full-width INCR bursts
  (split at the 256-beat and 4 KiB limits), while strided and indexed
  accesses degenerate into one narrow single-beat transaction per element —
  exactly the inefficiency Fig. 1 of the paper illustrates.
* On the **PACK** system, strided and indexed accesses become AXI-Pack
  bursts: bus-aligned, tightly packed, and split only at the 256-beat limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.axi.pack import PackUserField
from repro.axi.stream import ContiguousStream, IndirectStream, Stream, StridedStream
from repro.axi.transaction import BusRequest
from repro.axi.types import AXI4_BOUNDARY_BYTES, AXI4_MAX_BURST_LEN
from repro.errors import ConfigurationError
from repro.utils.bitutils import is_power_of_two
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BuilderConfig:
    """Static parameters of a request builder.

    Attributes
    ----------
    bus_bytes:
        Data bus width in bytes (paper default: 32 = 256 bit).
    max_burst_beats:
        Upper limit on beats per burst (AXI4 allows up to 256).
    max_narrow_burst_elems:
        How many elements an unextended requestor bundles per narrow
        transaction.  Ara's baseline VLSU issues one element per request,
        which is the paper's BASE behaviour and the default here.
    """

    bus_bytes: int = 32
    max_burst_beats: int = AXI4_MAX_BURST_LEN
    max_narrow_burst_elems: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.bus_bytes):
            raise ConfigurationError(
                f"bus width must be a power of two in bytes, got {self.bus_bytes}"
            )
        check_positive("max_burst_beats", self.max_burst_beats)
        if self.max_burst_beats > AXI4_MAX_BURST_LEN:
            raise ConfigurationError(
                f"max_burst_beats cannot exceed {AXI4_MAX_BURST_LEN}"
            )
        check_positive("max_narrow_burst_elems", self.max_narrow_burst_elems)


class RequestBuilder:
    """Turn streams into lists of legal :class:`BusRequest` objects."""

    def __init__(self, config: Optional[BuilderConfig] = None) -> None:
        self.config = config or BuilderConfig()

    @property
    def bus_bytes(self) -> int:
        """Data bus width in bytes."""
        return self.config.bus_bytes

    # ------------------------------------------------------------ contiguous
    def contiguous(self, stream: ContiguousStream, is_write: bool) -> List[BusRequest]:
        """Lower a contiguous stream to full-width INCR bursts.

        Bursts are split so that none crosses a 4 KiB boundary or exceeds the
        configured beat limit — the same splitting any AXI4 master performs.
        """
        requests: List[BusRequest] = []
        first = 0
        elem_bytes = stream.elem_bytes
        while first < stream.num_elements:
            addr = stream.base + first * elem_bytes
            remaining = stream.num_elements - first
            to_boundary = AXI4_BOUNDARY_BYTES - (addr % AXI4_BOUNDARY_BYTES)
            max_elems_boundary = max(1, to_boundary // elem_bytes)
            misalign = addr % self.bus_bytes
            max_burst_bytes = self.config.max_burst_beats * self.bus_bytes - misalign
            max_elems_burst = max(1, max_burst_bytes // elem_bytes)
            count = min(remaining, max_elems_boundary, max_elems_burst)
            requests.append(
                BusRequest(
                    addr=addr,
                    is_write=is_write,
                    num_elements=count,
                    elem_bytes=elem_bytes,
                    bus_bytes=self.bus_bytes,
                    contiguous=True,
                )
            )
            first += count
        return requests

    # ------------------------------------------------------------ BASE paths
    def narrow_elements(
        self, addresses: Sequence[int], elem_bytes: int, is_write: bool
    ) -> List[BusRequest]:
        """Lower a list of element addresses to narrow single-beat requests.

        This is what an unextended vector unit must do for strided and
        indexed accesses: issue one address per element and waste the wide
        data bus on every beat.

        The BASE system lowers every gather/scatter through here — one
        request per element — so this is a burst-creation hot path.  All the
        requests of one call share their geometry and are legal by
        construction, so a fully validated prototype is built once and the
        rest are dict-level copies differing only in address and transaction
        id, with the prototype's cached geometry attributes pre-seeded.
        """
        if len(addresses) == 0:
            return []
        from repro.axi.transaction import next_txn_id

        proto = BusRequest(
            addr=int(addresses[0]),
            is_write=is_write,
            num_elements=1,
            elem_bytes=elem_bytes,
            bus_bytes=self.bus_bytes,
            contiguous=False,
        )
        # Touch every cached geometry attribute so the copies inherit the
        # computed values (cached_property stores them in the instance dict).
        # All are address-independent for single-element narrow bursts.
        _ = (proto.mode, proto.is_packed, proto.is_narrow, proto.elems_per_beat,
             proto.beat_bytes, proto.payload_bytes, proto.num_beats)
        requests = [proto]
        base = proto.__dict__
        cls = BusRequest
        new = object.__new__
        append = requests.append
        for addr in addresses[1:]:
            request = new(cls)
            copy = dict(base)
            copy["addr"] = int(addr)
            copy["txn_id"] = next_txn_id()
            request.__dict__ = copy
            append(request)
        return requests

    def base_strided(self, stream: StridedStream, is_write: bool) -> List[BusRequest]:
        """BASE lowering of a strided stream: one narrow request per element.

        A stride of exactly one element is a contiguous access and is lowered
        to efficient full-width bursts, matching what Ara's unextended VLSU
        already does.
        """
        if stream.stride_elems == 1:
            contiguous = ContiguousStream(
                base=stream.base,
                num_elements=stream.num_elements,
                elem_bytes=stream.elem_bytes,
            )
            return self.contiguous(contiguous, is_write)
        return self.narrow_elements(
            stream.element_addresses(), stream.elem_bytes, is_write
        )

    def base_indexed(
        self, stream: IndirectStream, indices: np.ndarray, is_write: bool
    ) -> List[BusRequest]:
        """BASE lowering of an indexed stream (indices already in registers).

        The caller supplies the index values (which it loaded into vector
        registers through a separate contiguous request); each element then
        becomes a narrow single-beat transaction.
        """
        addresses = stream.element_addresses(indices)
        return self.narrow_elements(addresses, stream.elem_bytes, is_write)

    def index_fetch(self, stream: IndirectStream, is_write: bool = False) -> List[BusRequest]:
        """Contiguous burst(s) reading the index array into the core.

        Used by BASE and IDEAL, which must move indices over the bus before
        they can issue the element accesses; PACK never needs this because
        the controller fetches indices bank-side.
        """
        index_stream = ContiguousStream(
            base=stream.index_base,
            num_elements=stream.num_elements,
            elem_bytes=stream.index_bytes,
        )
        return self.contiguous(index_stream, is_write)

    # ------------------------------------------------------------ PACK paths
    def pack_strided(self, stream: StridedStream, is_write: bool) -> List[BusRequest]:
        """PACK lowering of a strided stream to AXI-Pack strided bursts."""
        elems_per_beat = self.bus_bytes // stream.elem_bytes
        max_elems = self.config.max_burst_beats * elems_per_beat
        requests: List[BusRequest] = []
        first = 0
        while first < stream.num_elements:
            count = min(max_elems, stream.num_elements - first)
            base = stream.base + first * stream.stride_bytes
            requests.append(
                BusRequest(
                    addr=base,
                    is_write=is_write,
                    num_elements=count,
                    elem_bytes=stream.elem_bytes,
                    bus_bytes=self.bus_bytes,
                    pack=PackUserField.strided(stream.stride_elems),
                )
            )
            first += count
        return requests

    def pack_indirect(self, stream: IndirectStream, is_write: bool) -> List[BusRequest]:
        """PACK lowering of an indexed stream to AXI-Pack indirect bursts."""
        elems_per_beat = self.bus_bytes // stream.elem_bytes
        max_elems = self.config.max_burst_beats * elems_per_beat
        requests: List[BusRequest] = []
        first = 0
        while first < stream.num_elements:
            count = min(max_elems, stream.num_elements - first)
            index_base = stream.index_base + first * stream.index_bytes
            requests.append(
                BusRequest(
                    addr=stream.base,
                    is_write=is_write,
                    num_elements=count,
                    elem_bytes=stream.elem_bytes,
                    bus_bytes=self.bus_bytes,
                    pack=PackUserField.indirect(stream.index_bytes, index_base),
                    index_base=index_base,
                )
            )
            first += count
        return requests

    # ------------------------------------------------------------ dispatch
    def lower(
        self,
        stream: Stream,
        is_write: bool,
        packed: bool,
        indices: Optional[np.ndarray] = None,
    ) -> List[BusRequest]:
        """Lower any stream for either system flavour.

        ``indices`` is required when lowering an :class:`IndirectStream` for
        an unextended (``packed=False``) requestor, because that requestor
        must already hold the index values in registers.
        """
        if isinstance(stream, ContiguousStream):
            return self.contiguous(stream, is_write)
        if isinstance(stream, StridedStream):
            if packed:
                return self.pack_strided(stream, is_write)
            return self.base_strided(stream, is_write)
        if isinstance(stream, IndirectStream):
            if packed:
                return self.pack_indirect(stream, is_write)
            if indices is None:
                raise ConfigurationError(
                    "lowering an indirect stream without AXI-Pack requires the "
                    "index values (they must be fetched into registers first)"
                )
            return self.base_indexed(stream, indices, is_write)
        raise ConfigurationError(f"unknown stream type {type(stream).__name__}")
