"""Burst-level interconnect blocks: routing and width conversion.

A central compatibility claim of AXI-Pack (paper §II-A) is that interconnect
IP which does not reshape bursts — demultiplexers, multiplexers, crossbars
that only route — works with packed bursts *unmodified*, because all the new
semantics live in the ``user`` field and the existing address/len/size
fields.  IP that does reshape bursts (data-width converters) needs a small
extension: it must re-pack bus-aligned elements when changing the bus width,
exactly as it already re-packs contiguous data.

These models operate at burst granularity (they transform
:class:`~repro.axi.transaction.BusRequest` objects); they are used by tests
and examples to demonstrate the compatibility story and by the system model
when a requestor and an endpoint disagree on bus width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.axi.pack import PackMode
from repro.axi.transaction import BusRequest
from repro.errors import ConfigurationError, ProtocolError
from repro.utils.bitutils import is_power_of_two


@dataclass(frozen=True)
class AddressRegion:
    """One target region of an address map."""

    base: int
    size: int
    target: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0 or self.target < 0:
            raise ConfigurationError("invalid address region")

    @property
    def end(self) -> int:
        """First byte address after the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True if the byte address falls inside this region."""
        return self.base <= addr < self.end


class AddressMap:
    """Ordered, non-overlapping address decode used by routing blocks."""

    def __init__(self, regions: Sequence[AddressRegion]) -> None:
        if not regions:
            raise ConfigurationError("address map needs at least one region")
        ordered = sorted(regions, key=lambda region: region.base)
        for before, after in zip(ordered, ordered[1:]):
            if before.end > after.base:
                raise ConfigurationError(
                    f"address regions overlap at {after.base:#x}"
                )
        self.regions: Tuple[AddressRegion, ...] = tuple(ordered)

    def route(self, addr: int) -> int:
        """Return the target index owning ``addr``."""
        for region in self.regions:
            if region.contains(addr):
                return region.target
        raise ProtocolError(f"address {addr:#x} decodes to no target (DECERR)")

    def try_route(self, addr: int) -> int:
        """Like :meth:`route`, but return ``-1`` for an unmapped address.

        The cycle-level demux uses this to answer unmapped bursts with
        in-band ``DECERR`` responses instead of aborting the simulation.
        """
        for region in self.regions:
            if region.contains(addr):
                return region.target
        return -1

    @property
    def num_targets(self) -> int:
        """Number of distinct targets in the map."""
        return len({region.target for region in self.regions})


class InterleavedAddressMap:
    """Stripe-interleaved address decode across ``num_targets`` channels.

    Instead of carving the address space into per-target regions, consecutive
    ``stripe_bytes``-sized stripes rotate across the targets:
    ``target = (addr // stripe_bytes) % num_targets``.  This is the classic
    multi-channel memory interleaving scheme — every channel sees a share of
    every workload's traffic, so bandwidth scales with the channel count
    without the software placing data.

    Routing blocks that consume this map route each burst by its *start*
    address (stripe-ownership semantics): the owning channel serves the whole
    burst even when its footprint crosses a stripe boundary.  That models a
    channel interleaver sitting in front of timing models which share one
    functional memory image, and keeps packed bursts — whose footprint is not
    derivable from the address alone — routable with zero AXI-Pack awareness,
    preserving the paper's §II-A compatibility claim.
    """

    def __init__(self, num_targets: int, stripe_bytes: int,
                 size_bytes: int) -> None:
        if num_targets < 1:
            raise ConfigurationError("interleaved map needs at least one target")
        if not is_power_of_two(stripe_bytes):
            raise ConfigurationError("stripe size must be a power of two")
        if size_bytes < stripe_bytes * num_targets:
            raise ConfigurationError(
                "address space smaller than one stripe per target"
            )
        self.num_targets = num_targets
        self.stripe_bytes = stripe_bytes
        self.size_bytes = size_bytes
        self._stripe_shift = stripe_bytes.bit_length() - 1

    def route(self, addr: int) -> int:
        """Return the target index owning the stripe containing ``addr``."""
        if not 0 <= addr < self.size_bytes:
            raise ProtocolError(
                f"address {addr:#x} decodes to no target (DECERR)"
            )
        return (addr >> self._stripe_shift) % self.num_targets

    def try_route(self, addr: int) -> int:
        """Like :meth:`route`, but return ``-1`` for an out-of-range address."""
        if not 0 <= addr < self.size_bytes:
            return -1
        return (addr >> self._stripe_shift) % self.num_targets


class AxiDemux:
    """Routes bursts to targets by address — without touching the burst.

    This is the model of the non-burst-reshaping routing IP the paper cites:
    the request (including its AXI-Pack user field) is forwarded verbatim, so
    the block is AXI-Pack compatible with zero modifications.  The demux only
    checks that the burst does not straddle two targets, which plain AXI4
    routing must check anyway.
    """

    def __init__(self, address_map: AddressMap) -> None:
        self.address_map = address_map
        self.routed_counts = {region.target: 0 for region in address_map.regions}

    def route(self, request: BusRequest) -> Tuple[int, BusRequest]:
        """Return ``(target, request)`` with the request unmodified."""
        target = self.address_map.route(request.addr)
        if request.contiguous and not request.is_packed:
            last = request.addr + request.payload_bytes - 1
            if self.address_map.route(last) != target:
                raise ProtocolError(
                    "contiguous burst straddles two targets; the upstream "
                    "master must split it"
                )
        self.routed_counts[target] += 1
        return target, request


class AxiMux:
    """Merges traffic from several masters onto one target port.

    Only bookkeeping is modelled (per-master transaction counts); like the
    demux it never modifies a burst, so AXI-Pack traffic passes through
    untouched.
    """

    def __init__(self, num_masters: int) -> None:
        if num_masters <= 0:
            raise ConfigurationError("mux needs at least one master")
        self.num_masters = num_masters
        self.forwarded = [0] * num_masters

    def forward(self, master: int, request: BusRequest) -> BusRequest:
        """Forward a master's burst unchanged."""
        if not 0 <= master < self.num_masters:
            raise ConfigurationError(f"unknown master {master}")
        self.forwarded[master] += 1
        return request


class DataWidthConverter:
    """Converts bursts between bus widths, re-packing AXI-Pack beats.

    This is the one class of interconnect IP that *does* need to understand
    AXI-Pack: when the data bus narrows or widens, the number of elements per
    beat changes, so the burst length must be recomputed and long bursts may
    need splitting to stay within the 256-beat limit.  Everything else
    (address, element size, stride, index base) is carried over unchanged.
    """

    def __init__(self, upstream_bytes: int, downstream_bytes: int) -> None:
        for width in (upstream_bytes, downstream_bytes):
            if not is_power_of_two(width):
                raise ConfigurationError("bus widths must be powers of two")
        self.upstream_bytes = upstream_bytes
        self.downstream_bytes = downstream_bytes

    def convert(self, request: BusRequest) -> List[BusRequest]:
        """Return the equivalent burst(s) on the downstream bus width."""
        if request.bus_bytes != self.upstream_bytes:
            raise ProtocolError(
                f"request was built for a {request.bus_bytes}-byte bus, but the "
                f"converter's upstream side is {self.upstream_bytes} bytes"
            )
        if request.elem_bytes > self.downstream_bytes:
            raise ProtocolError(
                "element does not fit in the downstream bus; a narrower bus "
                "cannot carry this packed stream"
            )
        out: List[BusRequest] = []
        elems_per_beat = (
            1 if request.is_narrow else self.downstream_bytes // request.elem_bytes
        )
        max_elems = 256 * elems_per_beat
        remaining = request.num_elements
        first = 0
        while remaining > 0:
            count = min(remaining, max_elems)
            out.append(self._rebuild(request, first, count))
            first += count
            remaining -= count
        return out

    def _rebuild(self, request: BusRequest, first: int, count: int) -> BusRequest:
        if request.mode is PackMode.STRIDED:
            stride_bytes = request.pack.stride_elems * request.elem_bytes
            addr = request.addr + first * stride_bytes
        elif request.mode is PackMode.INDIRECT:
            addr = request.addr
        else:
            addr = request.addr + first * request.elem_bytes
        pack = request.pack
        index_base = request.index_base
        if request.mode is PackMode.INDIRECT and first:
            index_base = request.index_base + first * pack.index_bytes
            pack = type(pack).indirect(pack.index_bytes, index_base)
        return BusRequest(
            addr=addr,
            is_write=request.is_write,
            num_elements=count,
            elem_bytes=request.elem_bytes,
            bus_bytes=self.downstream_bytes,
            contiguous=request.contiguous,
            pack=pack,
            index_base=index_base,
        )

    def beat_ratio(self) -> float:
        """Downstream beats needed per upstream beat (for sizing FIFOs)."""
        return self.upstream_bytes / self.downstream_bytes
