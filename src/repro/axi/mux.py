"""Cycle-level AXI routing components: N:1 multiplexer and 1:M demultiplexer.

These are the simulation-time counterparts of the burst-level transforms in
:mod:`repro.axi.interconnect`: where :class:`~repro.axi.interconnect.AxiMux`
models the *compatibility* story (a routed burst is forwarded verbatim),
:class:`CycleAxiMux` and :class:`CycleAxiDemux` model the *timing* story —
one address handshake per channel per cycle, one data beat per channel per
cycle, back-pressure, and arbitration between requestors contending for a
shared endpoint.  Both carry packed bursts unmodified, which is the paper's
central interconnect claim (§II-A): all routing decisions use only the
address and the transaction id, never the AXI-Pack ``user`` payload.

Composed back to back — one :class:`CycleAxiDemux` per requestor fanning out
over an N×M grid of link ports into one :class:`CycleAxiMux` per endpoint —
they form the full M×N crossbar :class:`~repro.system.soc.Soc` wires for
multi-channel topologies, with per-link arbitration at each mux.  The demux's
same-target AW gate (below) is what makes that composition deadlock-free.

Wake-hint contract
------------------
Both components are purely queue-driven: every state transition is triggered
by an item arriving on (or back-pressure clearing from) one of the queues
returned by :meth:`wake_queues`, so ``tick`` always returns
:data:`~repro.sim.component.IDLE`.  To keep event-driven and
tick-every-cycle simulations bit-identical, the arbitration pointers advance
*only on a successful grant* (a queue push, which itself re-wakes the
component) — never on an idle cycle — so a slept-through window leaves the
component's state exactly as a naive per-cycle evaluation would.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.axi.faults import BusFaultPlan
from repro.axi.interconnect import AddressMap
from repro.axi.port import AxiPort
from repro.axi.signals import BBeat, RBeat
from repro.axi.transaction import BusRequest
from repro.axi.types import Resp
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.queue import DecoupledQueue
from repro.sim.stats import StatsRegistry

#: Supported arbitration policies for the N:1 multiplexer.
ARBITRATION_POLICIES = ("rr", "qos")


class CycleAxiMux(Component):
    """Merges N requestor ports onto one endpoint port, cycle by cycle.

    Per cycle the mux moves at most one handshake per channel, exactly like
    the single physical bus it models:

    * **AR / AW** — one request each, chosen among the upstream ports with a
      pending request by the arbitration policy (``"rr"``: round-robin
      starting after the last winner; ``"qos"``: static priority, highest
      ``qos`` value first, ties broken by port index).  Winning AW bursts
      are queued for W routing in acceptance order.
    * **W** — one data beat, pulled from the upstream port whose accepted AW
      is oldest; this keeps the downstream W stream in AW order, which is
      what single-port endpoints (and AXI4 itself, which has no WID) assume.
    * **R / B** — one beat each, routed back to the owning requestor by the
      transaction id recorded when its AR/AW was forwarded.  A full
      requestor-side R/B queue stalls the shared channel (head-of-line
      blocking on the one physical return bus).

    Requests are forwarded verbatim — packed AXI-Pack bursts included.
    """

    def __init__(
        self,
        name: str,
        upstreams: Sequence[AxiPort],
        downstream: AxiPort,
        arbitration: str = "rr",
        qos: Optional[Sequence[int]] = None,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        super().__init__(name)
        if not upstreams:
            raise ConfigurationError("mux needs at least one upstream port")
        if arbitration not in ARBITRATION_POLICIES:
            raise ConfigurationError(
                f"unknown arbitration {arbitration!r}; "
                f"choose from {ARBITRATION_POLICIES}"
            )
        for port in upstreams:
            if port.bus_bytes != downstream.bus_bytes:
                raise ProtocolError(
                    f"upstream port {port.name!r} is {port.bus_bytes}B wide but "
                    f"the downstream bus is {downstream.bus_bytes}B; insert a "
                    "DataWidthConverter"
                )
        self.upstreams = list(upstreams)
        self.downstream = downstream
        self.arbitration = arbitration
        num = len(self.upstreams)
        if qos is None:
            # Default static priorities: lower port index wins under "qos".
            qos = [num - index for index in range(num)]
        if len(qos) != num:
            raise ConfigurationError("qos needs one priority per upstream port")
        self.qos = list(qos)
        #: port indices in static-priority order (highest qos first).
        self._priority_order = sorted(
            range(num), key=lambda index: (-self.qos[index], index)
        )
        self.stats = stats if stats is not None else StatsRegistry()
        self._ar_rr = 0  #: next port the AR round-robin scan starts at
        self._aw_rr = 0  #: next port the AW round-robin scan starts at
        #: read/write transaction owner: txn_id -> upstream port index
        self._r_owner: Dict[int, int] = {}
        self._b_owner: Dict[int, int] = {}
        #: accepted writes still owed W beats: (upstream index, beats left)
        self._w_order: Deque[Tuple[int, int]] = deque()
        #: per-upstream grant counts (fairness observability)
        self.ar_grants = [0] * num
        self.aw_grants = [0] * num
        self._c_ar = self.stats.counter("mux.ar_grants")
        self._c_aw = self.stats.counter("mux.aw_grants")
        self._c_r = self.stats.counter("mux.r_beats")
        self._c_b = self.stats.counter("mux.b_beats")

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        self._route_r()
        self._route_b()
        winner = self._arbitrate(self._select_ar, self._ar_rr)
        if winner >= 0:
            self._forward_ar(winner)
        winner = self._arbitrate(self._select_aw, self._aw_rr)
        if winner >= 0:
            self._forward_aw(winner)
        if self._w_order:
            self._forward_w()
        # Purely queue-driven (see the module docstring): anything the mux
        # did this cycle touched a queue and re-wakes it; anything it is
        # waiting for arrives on a subscribed queue.
        return IDLE

    def wake_queues(self):
        queues: List[DecoupledQueue] = []
        for port in self.upstreams:
            queues.extend(port.all_queues())
        queues.extend(self.downstream.all_queues())
        return queues

    def busy(self) -> bool:
        return bool(self._r_owner or self._b_owner or self._w_order)

    def reset(self) -> None:
        self._ar_rr = 0
        self._aw_rr = 0
        self._r_owner.clear()
        self._b_owner.clear()
        self._w_order.clear()
        self.ar_grants = [0] * len(self.upstreams)
        self.aw_grants = [0] * len(self.upstreams)

    # ----------------------------------------------------------- arbitration
    def _select_ar(self, index: int) -> bool:
        return bool(self.upstreams[index].ar._storage)

    def _select_aw(self, index: int) -> bool:
        return bool(self.upstreams[index].aw._storage)

    def _arbitrate(self, pending, rr_start: int) -> int:
        """Index of the winning upstream port, or -1 when none is pending."""
        count = len(self.upstreams)
        if self.arbitration == "qos":
            for index in self._priority_order:
                if pending(index):
                    return index
            return -1
        for offset in range(count):
            index = rr_start + offset
            if index >= count:
                index -= count
            if pending(index):
                return index
        return -1

    # ------------------------------------------------------------ forwarding
    def _forward_ar(self, index: int) -> None:
        down = self.downstream.ar
        if down._count >= down.depth:
            return
        request: BusRequest = self.upstreams[index].ar.pop()
        self._r_owner[request.txn_id] = index
        down.push(request)
        self.ar_grants[index] += 1
        self._c_ar.value += 1
        self._ar_rr = (index + 1) % len(self.upstreams)

    def _forward_aw(self, index: int) -> None:
        down = self.downstream.aw
        if down._count >= down.depth:
            return
        request: BusRequest = self.upstreams[index].aw.pop()
        self._b_owner[request.txn_id] = index
        self._w_order.append((index, request.num_beats))
        down.push(request)
        self.aw_grants[index] += 1
        self._c_aw.value += 1
        self._aw_rr = (index + 1) % len(self.upstreams)

    def _forward_w(self) -> None:
        down = self.downstream.w
        if down._count >= down.depth:
            return
        index, beats_left = self._w_order[0]
        source = self.upstreams[index].w
        if not source._storage:
            return
        down.push(source.pop())
        if beats_left == 1:
            self._w_order.popleft()
        else:
            self._w_order[0] = (index, beats_left - 1)

    # -------------------------------------------------------------- returns
    def _route_r(self) -> None:
        source = self.downstream.r
        if not source._storage:
            return
        beat = source._storage[0]
        owner = self._r_owner.get(beat.txn_id)
        if owner is None:
            raise ProtocolError(
                f"R beat for unknown transaction {beat.txn_id} reached mux "
                f"{self.name!r}"
            )
        sink = self.upstreams[owner].r
        if sink._count >= sink.depth:
            return  # head-of-line blocking on the shared return bus
        sink.push(source.pop())
        self._c_r.value += 1
        if beat.last:
            del self._r_owner[beat.txn_id]

    def _route_b(self) -> None:
        source = self.downstream.b
        if not source._storage:
            return
        beat = source._storage[0]
        owner = self._b_owner.get(beat.txn_id)
        if owner is None:
            raise ProtocolError(
                f"B beat for unknown transaction {beat.txn_id} reached mux "
                f"{self.name!r}"
            )
        sink = self.upstreams[owner].b
        if sink._count >= sink.depth:
            return
        sink.push(source.pop())
        self._c_b.value += 1
        del self._b_owner[beat.txn_id]


class CycleAxiDemux(Component):
    """Routes one requestor port to M endpoint ports by address decode.

    The forward path decodes each AR/AW against an
    :class:`~repro.axi.interconnect.AddressMap` (region targets index the
    ``downstreams`` list) or an
    :class:`~repro.axi.interconnect.InterleavedAddressMap` and forwards the
    burst verbatim; W beats follow their AW.  The return path merges R and B
    beats round-robin, one beat per channel per cycle, back onto the single
    upstream port — the requestor demultiplexes them by transaction id.  Like
    the cycle mux, the component is purely queue-driven and the merge
    pointers only advance on a successful forward.

    **Same-target AW gate.**  An AW whose decode target differs from the
    target of the still-outstanding W beats is *not* accepted until those
    beats have drained.  AXI4 has no WID: each master emits one W stream in
    AW order, so without the gate two demuxes can each owe their oldest W
    beats to the endpoint the *other* demux's beats are queued behind — a
    cyclic wait once the link queues fill (the classic W-interleave crossbar
    deadlock, resolved the same way as pulp-platform's ``axi_demux``).  With
    the gate every demux owes W beats to at most one target at a time, which
    makes the demux→mux crossbar composition deadlock-free.

    ``check_straddle=False`` disables the burst-straddle protocol check for
    interleaved maps, where routing deliberately uses only the start address
    (stripe-ownership semantics — see ``InterleavedAddressMap``).

    **Decode errors.**  A burst whose address decodes to no target — or
    which straddles two targets while ``check_straddle`` is on, or which an
    injected :class:`~repro.axi.faults.BusFaultSpec` (kind ``slverr`` /
    ``decerr``) marks as faulted — is answered *in band*, per the AXI spec:
    an AR yields the full burst length as phantom R beats (``useful_bytes=0``,
    error ``resp``); an AW has all its W beats consumed and discarded, then
    answers an error B.  Error beats share the single return bus with routed
    traffic (at most one R and one B per cycle total) and the simulation
    continues — the requestor sees the error response and decides.
    """

    def __init__(
        self,
        name: str,
        upstream: AxiPort,
        downstreams: Sequence[AxiPort],
        address_map: AddressMap,
        stats: Optional[StatsRegistry] = None,
        check_straddle: bool = True,
        bus_faults: Optional[BusFaultPlan] = None,
    ) -> None:
        super().__init__(name)
        if not downstreams:
            raise ConfigurationError("demux needs at least one downstream port")
        regions = getattr(address_map, "regions", None)
        if regions is not None:
            for region in regions:
                if not 0 <= region.target < len(downstreams):
                    raise ConfigurationError(
                        f"address region at {region.base:#x} targets port "
                        f"{region.target}, but only {len(downstreams)} exist"
                    )
        elif address_map.num_targets > len(downstreams):
            raise ConfigurationError(
                f"address map decodes to {address_map.num_targets} targets, "
                f"but only {len(downstreams)} downstream ports exist"
            )
        self.upstream = upstream
        self.downstreams = list(downstreams)
        self.address_map = address_map
        self.check_straddle = check_straddle
        self.stats = stats if stats is not None else StatsRegistry()
        self._fault_plan = (
            bus_faults if bus_faults is not None
            and bus_faults.touches_port(name) else None
        )
        #: accepted writes still owed W beats: (target index, beats left);
        #: target ``-1`` marks an error burst whose beats are discarded
        self._w_order: Deque[Tuple[int, int]] = deque()
        self._r_rr = 0
        self._b_rr = 0
        self.routed_counts = [0] * len(self.downstreams)
        #: outstanding error reads: [txn_id, beats left, resp]
        self._error_r: Deque[List] = deque()
        #: error writes whose W beats are still draining, acceptance order
        self._error_b_pending: Deque[Tuple[int, Resp]] = deque()
        #: error writes ready to answer: (txn_id, resp)
        self._error_b: Deque[Tuple[int, Resp]] = deque()
        self._c_error_bursts = self.stats.counter("demux.error_bursts")

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> WakeHint:
        pushed = self._merge_return(
            [port.r for port in self.downstreams], self.upstream.r, "r"
        )
        if not pushed and self._error_r:
            self._emit_error_r()
        pushed = self._merge_return(
            [port.b for port in self.downstreams], self.upstream.b, "b"
        )
        if not pushed and self._error_b:
            self._emit_error_b()
        self._forward_request(self.upstream.ar, is_write=False)
        self._forward_request(self.upstream.aw, is_write=True)
        if self._w_order:
            self._forward_w()
        return IDLE

    def wake_queues(self):
        queues: List[DecoupledQueue] = list(self.upstream.all_queues())
        for port in self.downstreams:
            queues.extend(port.all_queues())
        return queues

    def busy(self) -> bool:
        return bool(
            self._w_order or self._error_r or self._error_b
            or self._error_b_pending
        )

    def reset(self) -> None:
        self._w_order.clear()
        self._r_rr = 0
        self._b_rr = 0
        self.routed_counts = [0] * len(self.downstreams)
        self._error_r.clear()
        self._error_b_pending.clear()
        self._error_b.clear()

    # ------------------------------------------------------------ forwarding
    def _error_resp(self, request: BusRequest) -> Optional[Resp]:
        """The in-band error response this burst must receive, if any."""
        plan = self._fault_plan
        if plan is not None:
            fault = plan.first_match(self.name, request.txn_id, request.addr)
            if fault is not None and fault.kind in ("slverr", "decerr"):
                return fault.resp
        target = self.address_map.try_route(request.addr)
        if target < 0:
            return Resp.DECERR
        if self.check_straddle and request.contiguous and not request.is_packed:
            last = request.addr + request.payload_bytes - 1
            if self.address_map.try_route(last) != target:
                # A contiguous burst straddling two targets cannot be served
                # by either: the decode is ill-formed, answered as DECERR.
                return Resp.DECERR
        return None

    def _route_target(self, request: BusRequest) -> int:
        target = self.address_map.route(request.addr)
        if self.check_straddle and request.contiguous and not request.is_packed:
            last = request.addr + request.payload_bytes - 1
            if self.address_map.route(last) != target:
                raise ProtocolError(
                    "contiguous burst straddles two demux targets; the "
                    "upstream master must split it"
                )
        return target

    def _forward_request(self, source: DecoupledQueue, is_write: bool) -> None:
        if not source._storage:
            return
        request: BusRequest = source._storage[0]
        resp = self._error_resp(request)
        if resp is not None:
            # Error burst: accepted unconditionally (its beats go nowhere, so
            # no downstream queue or AW gate constrains it) and answered in
            # band with phantom beats of the correct burst length.
            source.pop()
            self._c_error_bursts.value += 1
            if is_write:
                self._w_order.append((-1, request.num_beats))
                self._error_b_pending.append((request.txn_id, resp))
            else:
                self._error_r.append([request.txn_id, request.num_beats, resp])
            return
        target = self._route_target(request)
        if is_write and self._w_order and self._w_order[0][0] != target:
            # Same-target AW gate (see the class docstring): hold this AW
            # until the W beats owed to the previous target have drained.
            return
        sink = (
            self.downstreams[target].aw if is_write else self.downstreams[target].ar
        )
        if sink._count >= sink.depth:
            return
        sink.push(source.pop())
        self.routed_counts[target] += 1
        if is_write:
            self._w_order.append((target, request.num_beats))

    def _forward_w(self) -> None:
        source = self.upstream.w
        if not source._storage:
            return
        target, beats_left = self._w_order[0]
        if target < 0:
            # Error burst: consume and discard the W beat; once the burst's
            # data has fully drained its error B becomes ready.
            source.pop()
            if beats_left == 1:
                self._w_order.popleft()
                self._error_b.append(self._error_b_pending.popleft())
            else:
                self._w_order[0] = (target, beats_left - 1)
            return
        sink = self.downstreams[target].w
        if sink._count >= sink.depth:
            return
        sink.push(source.pop())
        if beats_left == 1:
            self._w_order.popleft()
        else:
            self._w_order[0] = (target, beats_left - 1)

    # -------------------------------------------------------------- returns
    def _merge_return(self, sources: List[DecoupledQueue],
                      sink: DecoupledQueue, channel: str) -> bool:
        if sink._count >= sink.depth:
            return True  # back-pressured: the error path must not push either
        count = len(sources)
        rr = self._r_rr if channel == "r" else self._b_rr
        for offset in range(count):
            index = rr + offset
            if index >= count:
                index -= count
            if sources[index]._storage:
                sink.push(sources[index].pop())
                if channel == "r":
                    self._r_rr = (index + 1) % count
                else:
                    self._b_rr = (index + 1) % count
                return True
        return False

    def _emit_error_r(self) -> None:
        """Emit one phantom R beat of the oldest error read burst."""
        sink = self.upstream.r
        if sink._count >= sink.depth:
            return
        entry = self._error_r[0]
        txn_id, beats_left, resp = entry
        sink.push(
            RBeat(
                txn_id=txn_id,
                data=b"",
                useful_bytes=0,
                last=beats_left == 1,
                resp=resp,
            )
        )
        if beats_left == 1:
            self._error_r.popleft()
        else:
            entry[1] = beats_left - 1

    def _emit_error_b(self) -> None:
        """Answer the oldest fully drained error write burst."""
        sink = self.upstream.b
        if sink._count >= sink.depth:
            return
        txn_id, resp = self._error_b.popleft()
        sink.push(BBeat(txn_id=txn_id, resp=resp))
