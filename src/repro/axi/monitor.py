"""Bus channel monitors: the instrumentation behind every utilization number.

The paper's headline metric is *R bus utilization*: the fraction of the
read-data channel's raw capacity (bus width x cycles) that carries payload
the requestor actually asked for.  A narrow 32-bit beat on a 256-bit bus
contributes 12.5 % for the cycle it occupies; a fully packed AXI-Pack beat
contributes 100 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ChannelMonitor:
    """Accumulates beat and payload counts for one AXI channel.

    Attributes
    ----------
    name:
        Channel name, e.g. ``"R"`` or ``"W"``.
    bus_bytes:
        Width of the monitored data bus in bytes.
    """

    name: str
    bus_bytes: int
    beats: int = 0
    useful_bytes: int = 0
    payload_beats_by_kind: Dict[str, int] = field(default_factory=dict)
    useful_bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def record_beat(self, useful_bytes: int, kind: str = "data") -> None:
        """Record one occupied bus cycle carrying ``useful_bytes`` of payload.

        ``kind`` tags the beat so index traffic can be separated from data
        traffic; Fig. 3a reports utilization both with and without index
        transfers for the systems that move indices over the bus.
        """
        if useful_bytes < 0 or useful_bytes > self.bus_bytes:
            raise ValueError(
                f"useful bytes {useful_bytes} outside [0, {self.bus_bytes}]"
            )
        self.beats += 1
        self.useful_bytes += useful_bytes
        beats_by_kind = self.payload_beats_by_kind
        bytes_by_kind = self.useful_bytes_by_kind
        if kind in beats_by_kind:  # fast path: recording one beat per cycle
            beats_by_kind[kind] += 1
            bytes_by_kind[kind] += useful_bytes
        else:
            beats_by_kind[kind] = 1
            bytes_by_kind[kind] = useful_bytes

    # ------------------------------------------------------------ utilization
    def utilization(self, elapsed_cycles: int, include_kinds: Optional[set] = None) -> float:
        """Return the bus utilization over ``elapsed_cycles`` cycles.

        Utilization is useful payload divided by the channel's raw capacity.
        ``include_kinds`` restricts the payload to the given beat kinds (for
        example ``{"data"}`` to exclude index traffic).
        """
        if elapsed_cycles <= 0:
            return 0.0
        if include_kinds is None:
            useful = self.useful_bytes
        else:
            useful = sum(
                count
                for kind, count in self.useful_bytes_by_kind.items()
                if kind in include_kinds
            )
        return useful / (self.bus_bytes * elapsed_cycles)

    def occupancy(self, elapsed_cycles: int) -> float:
        """Fraction of cycles during which the channel carried any beat."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.beats / elapsed_cycles

    def packing_efficiency(self) -> float:
        """Average fraction of each occupied beat that carried useful payload."""
        if self.beats == 0:
            return 0.0
        return self.useful_bytes / (self.beats * self.bus_bytes)

    def merge(self, other: "ChannelMonitor") -> None:
        """Accumulate another monitor's counts into this one."""
        self.beats += other.beats
        self.useful_bytes += other.useful_bytes
        for kind, count in other.payload_beats_by_kind.items():
            self.payload_beats_by_kind[kind] = (
                self.payload_beats_by_kind.get(kind, 0) + count
            )
        for kind, count in other.useful_bytes_by_kind.items():
            self.useful_bytes_by_kind[kind] = (
                self.useful_bytes_by_kind.get(kind, 0) + count
            )

    def reset(self) -> None:
        """Zero all counters."""
        self.beats = 0
        self.useful_bytes = 0
        self.payload_beats_by_kind.clear()
        self.useful_bytes_by_kind.clear()
