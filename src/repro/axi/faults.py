"""Deterministic bus-level fault injection for the cycle-level stack.

:mod:`repro.orchestrate.faults` proves the *orchestrator* survives worker
death; this module is the same idea one layer down — it proves the
*simulated system* survives bus errors.  A :class:`BusFaultPlan` describes
exactly which bus accesses misbehave and how; the memory endpoints and the
crossbar demux each consult the plan at one choke point, and everything
downstream (response merging, engine abort, fault reports) is ordinary
error-response plumbing that injected and organic faults share.

A plan is plain frozen data (picklable, JSON round-trippable, canonicalizes
for cache fingerprints) and is carried by
:attr:`repro.system.config.SystemConfig.bus_faults`::

    repro run spmv --inject-bus-fault \
        '{"faults": [{"kind": "slverr", "addr_lo": 4096, "addr_hi": 8192}]}'

Fault kinds:

``slverr``
    The matched access completes with ``Resp.SLVERR`` — the endpoint
    decoded the address but could not serve it (bank ECC error, device
    fault).  Reads deliver phantom beats (zero useful bytes), writes are
    dropped; the burst geometry (beat count, ``last`` position) is intact.
``decerr``
    The matched request decodes to no endpoint.  When a
    :class:`~repro.axi.mux.CycleAxiDemux` sits on the path it answers
    in-band with ``Resp.DECERR`` phantom beats, exactly as an AXI
    interconnect's default-slave does; endpoints reached directly answer
    ``DECERR`` themselves.
``stall``
    The matched access's response is delayed ``stall_cycles`` cycles — a
    slow device.  The response itself is still ``OKAY``; this fault
    exercises the engine's per-transaction watchdog *margin* without
    tripping it (unless stalled past ``watchdog_cycles``).
``lost``
    The matched access's response never arrives — the transaction
    vanishes, like a dropped flit or a wedged device.  Only the engine's
    watchdog (armed whenever a plan is attached, see ``watchdog_cycles``)
    turns this into a structured timeout abort instead of a deadlock.

Faults are matched by ``(port, txn, address)``:

* ``port`` — the name of the component consulting the plan (the banked
  memory or ideal endpoint's name, the demux's name).  ``None`` matches
  any port.
* ``txn`` — the AXI transaction serial of the burst.  ``None`` matches any
  transaction.  Word-granular accesses inside the banked memory carry no
  transaction id, so txn-keyed faults never fire there — key by address
  range to target the banked path.
* ``addr_lo``/``addr_hi`` — a half-open byte-address range ``[lo, hi)``
  the access's address must fall in.  ``None`` bounds are open.  Address
  keying is the topology-stable choice: byte addresses are invariant
  across engine/channel counts, so one plan produces the same fault
  report on a 1×1 SoC and a 2×2 crossbar.

A fault with no keys matches *every* access — handy for smoke tests,
ruinous for anything else.  Matching is pure (no marker files, no hidden
state): the same plan on the same program always fires identically, which
is what makes fault-injected runs bit-comparable across the config cube.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from repro.axi.types import Resp
from repro.errors import ConfigurationError

#: Every fault kind a :class:`BusFaultSpec` accepts.
BUS_FAULT_KINDS = ("slverr", "decerr", "stall", "lost")

#: Default watchdog timeout (cycles without progress on one memory op).
#: Deliberately far below the engine's 10k-cycle deadlock window so a lost
#: response becomes a structured abort long before deadlock detection fires.
DEFAULT_WATCHDOG_CYCLES = 2000


@dataclass(frozen=True)
class BusFaultSpec:
    """One injected bus fault, matched by port name, txn serial and address.

    All keys are conjunctive: a spec with ``port="mem"`` and an address
    range fires only on accesses by the component named ``mem`` inside the
    range.  Matching is stateless — every matching access is faulted, so a
    spec is a property of the address/transaction space, not an event
    counter (that is what keeps it meaningful across topologies, where the
    same program decomposes into different transaction sequences).
    """

    kind: str
    port: Optional[str] = None       #: component name to target (None: any)
    txn: Optional[int] = None        #: AXI txn serial to target (None: any)
    addr_lo: Optional[int] = None    #: inclusive lower byte address bound
    addr_hi: Optional[int] = None    #: exclusive upper byte address bound
    stall_cycles: int = 16           #: response delay for ``stall``

    def __post_init__(self) -> None:
        if self.kind not in BUS_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown bus fault kind {self.kind!r}; known: {BUS_FAULT_KINDS}"
            )
        if self.stall_cycles < 0:
            raise ConfigurationError("stall_cycles must be non-negative")

    def matches(self, port: str, txn: Optional[int], addr: int) -> bool:
        """Whether this fault fires for an access ``(port, txn, addr)``.

        ``txn=None`` (a word-granular access with no transaction identity)
        never matches a txn-keyed spec.
        """
        if self.port is not None and self.port != port:
            return False
        if self.txn is not None and self.txn != txn:
            return False
        if self.addr_lo is not None and addr < self.addr_lo:
            return False
        if self.addr_hi is not None and addr >= self.addr_hi:
            return False
        return True

    @property
    def resp(self) -> Resp:
        """The response code this fault injects (OKAY for stall/lost)."""
        if self.kind == "slverr":
            return Resp.SLVERR
        if self.kind == "decerr":
            return Resp.DECERR
        return Resp.OKAY


@dataclass(frozen=True)
class BusFaultPlan:
    """A deterministic set of bus faults threaded through one SoC.

    ``watchdog_cycles`` arms the vector engine's per-memory-op watchdog:
    an op that sees no response progress for that many cycles is abandoned
    with a structured timeout fault.  The watchdog exists *only* while a
    plan is attached — fault-free runs carry no watchdog state at all,
    which is how the bit-identical-baselines guarantee stays trivial.
    """

    faults: Tuple[BusFaultSpec, ...] = ()
    seed: int = 0
    watchdog_cycles: int = DEFAULT_WATCHDOG_CYCLES

    def __post_init__(self) -> None:
        if self.watchdog_cycles < 1:
            raise ConfigurationError("watchdog_cycles must be positive")

    # ------------------------------------------------------------ building
    @classmethod
    def from_json(cls, payload: Any) -> "BusFaultPlan":
        """Build a plan from the JSON form (a dict or a JSON string)."""
        if isinstance(payload, str):
            try:
                payload = json.loads(payload)
            except ValueError as exc:
                raise ConfigurationError(
                    f"invalid bus fault plan JSON: {exc}"
                ) from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"bus fault plan must be a JSON object, got {type(payload).__name__}"
            )
        try:
            faults = tuple(
                BusFaultSpec(**fault) for fault in payload.get("faults", ())
            )
        except TypeError as exc:
            raise ConfigurationError(f"invalid bus fault spec: {exc}") from exc
        return cls(
            faults=faults,
            seed=int(payload.get("seed", 0)),
            watchdog_cycles=int(
                payload.get("watchdog_cycles", DEFAULT_WATCHDOG_CYCLES)
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        """The JSON form accepted by :meth:`from_json`."""
        return {
            "seed": self.seed,
            "watchdog_cycles": self.watchdog_cycles,
            "faults": [asdict(fault) for fault in self.faults],
        }

    # ----------------------------------------------------- injection sites
    def first_match(self, port: str, txn: Optional[int],
                    addr: int) -> Optional[BusFaultSpec]:
        """The first fault firing for ``(port, txn, addr)``, or None.

        First-match-wins keeps overlapping specs deterministic; plans are
        short (a handful of specs), so a linear scan per *burst* is noise.
        Word-granular callers (the banked memory) should prefilter with
        :meth:`touches_port` so the fault-free word hot path stays cheap.
        """
        for fault in self.faults:
            if fault.matches(port, txn, addr):
                return fault
        return None

    def touches_port(self, port: str) -> bool:
        """Whether any spec could ever fire on ``port`` (cheap prefilter)."""
        return any(f.port is None or f.port == port for f in self.faults)
