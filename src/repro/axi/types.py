"""Basic AXI4 protocol types, encodings and legality constants."""

from __future__ import annotations

import enum

from repro.errors import ProtocolError
from repro.utils.bitutils import is_power_of_two

#: Maximum number of beats in a single AXI4 INCR burst (AxLEN is 8 bits).
AXI4_MAX_BURST_LEN = 256

#: AXI4 forbids INCR bursts from crossing a 4 KiB address boundary.
AXI4_BOUNDARY_BYTES = 4096

#: Widest data bus the model supports (wider is legal AXI but unused here).
MAX_BUS_BYTES = 128


class BurstType(enum.Enum):
    """AXI4 AxBURST encoding."""

    FIXED = 0
    INCR = 1
    WRAP = 2

    @property
    def encoding(self) -> int:
        """Return the 2-bit AxBURST wire encoding."""
        return self.value


class Resp(enum.Enum):
    """AXI4 response codes carried on R and B channels.

    The enum value doubles as the severity used by :func:`worst_resp`:
    ``OKAY < EXOKAY < SLVERR < DECERR``.  (EXOKAY outranking OKAY matches
    the merge rule AXI interconnects use when collapsing split responses —
    an exclusive-okay is the more specific answer, an error beats both.)
    """

    OKAY = 0
    EXOKAY = 1
    SLVERR = 2
    DECERR = 3

    @property
    def is_error(self) -> bool:
        """True for the two error responses (SLVERR, DECERR)."""
        return self.value >= Resp.SLVERR.value


def worst_resp(a: Resp, b: Resp) -> Resp:
    """Merge two response codes, keeping the more severe one.

    This is the per-burst merge rule used everywhere a response is built
    from several sub-accesses (word slots of a beat, beats of a burst):
    the burst's response is the worst response of any of its parts.
    """
    return a if a.value >= b.value else b


def bytes_to_axsize(num_bytes: int) -> int:
    """Convert a per-beat transfer size in bytes to the AxSIZE encoding.

    AXI encodes the number of bytes per beat as ``2**AxSIZE``; only
    power-of-two sizes are legal.

    >>> bytes_to_axsize(4)
    2
    >>> bytes_to_axsize(32)
    5
    """
    if num_bytes <= 0 or not is_power_of_two(num_bytes):
        raise ProtocolError(
            f"AxSIZE requires a positive power-of-two byte count, got {num_bytes}"
        )
    return num_bytes.bit_length() - 1


def axsize_to_bytes(axsize: int) -> int:
    """Convert an AxSIZE field back to the number of bytes per beat."""
    if not 0 <= axsize <= 7:
        raise ProtocolError(f"AxSIZE must be in [0, 7], got {axsize}")
    return 1 << axsize


def check_incr_burst_legal(addr: int, num_beats: int, beat_bytes: int) -> None:
    """Validate a plain AXI4 INCR burst against the protocol rules.

    Raises :class:`~repro.errors.ProtocolError` if the burst is longer than
    256 beats or crosses a 4 KiB boundary.  AXI-Pack bursts are exempt from
    the boundary rule at the endpoint because the addresses they touch are
    not contiguous; the request itself still respects the 256-beat limit.
    """
    if num_beats < 1:
        raise ProtocolError(f"burst must have at least one beat, got {num_beats}")
    if num_beats > AXI4_MAX_BURST_LEN:
        raise ProtocolError(
            f"AXI4 burst length {num_beats} exceeds the {AXI4_MAX_BURST_LEN}-beat limit"
        )
    first_page = addr // AXI4_BOUNDARY_BYTES
    last_byte = addr + num_beats * beat_bytes - 1
    last_page = last_byte // AXI4_BOUNDARY_BYTES
    if first_page != last_page:
        raise ProtocolError(
            f"AXI4 INCR burst from {addr:#x} for {num_beats}x{beat_bytes}B crosses "
            "a 4KiB boundary"
        )


def check_burst_len_legal(num_beats: int) -> None:
    """Validate only the 256-beat limit (applies to AXI-Pack bursts too)."""
    if num_beats < 1:
        raise ProtocolError(f"burst must have at least one beat, got {num_beats}")
    if num_beats > AXI4_MAX_BURST_LEN:
        raise ProtocolError(
            f"burst length {num_beats} exceeds the {AXI4_MAX_BURST_LEN}-beat limit"
        )
