"""Burst-level request descriptor shared by requestors and endpoints.

A :class:`BusRequest` is the model-level view of one AR or AW handshake plus
everything the endpoint needs to serve it.  It corresponds one-to-one to an
:class:`~repro.axi.signals.ARBeat`/:class:`~repro.axi.signals.AWBeat` (the
conversion helpers are provided) but keeps decoded fields around so the
simulator does not have to re-parse user bits on every beat.

Three flavours of request exist:

* **plain contiguous** (``pack.mode is NONE``, ``contiguous=True``): a normal
  full-width AXI4 INCR burst; beats cover consecutive bus-wide lines.
* **plain narrow** (``pack.mode is NONE``, ``contiguous=False``): the
  element-per-beat transfers an unextended requestor must fall back to for
  strided/indexed accesses — each beat carries a single element and wastes
  the rest of the bus (this is the inefficiency AXI-Pack removes).
* **packed** (``pack.mode`` STRIDED or INDIRECT): an AXI-Pack burst; beats
  are bus-aligned and tightly packed with elements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Tuple

from repro.axi.pack import (
    DEFAULT_LAYOUT,
    PLAIN_AXI4_FIELD,
    PackMode,
    PackUserField,
    PackUserLayout,
)
from repro.axi.signals import ARBeat, AWBeat
from repro.axi.types import (
    BurstType,
    check_burst_len_legal,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.utils.math import ceil_div

_txn_counter = itertools.count()


def next_txn_id() -> int:
    """Return a fresh globally unique transaction id."""
    return next(_txn_counter)


def reset_txn_ids() -> None:
    """Restart transaction-id numbering (useful for reproducible tests)."""
    global _txn_counter
    _txn_counter = itertools.count()


@dataclass
class BusRequest:
    """One AXI4 or AXI-Pack burst request.

    Attributes
    ----------
    addr:
        Burst address.  For packed bursts this is the element base address
        (strided) or gather/scatter base (indirect).
    is_write:
        True for AW/W/B traffic, False for AR/R traffic.
    num_elements:
        Number of stream elements the burst carries.
    elem_bytes:
        Size of one stream element in bytes.
    bus_bytes:
        Width of the data bus the burst travels on.
    contiguous:
        For plain AXI4 requests, True selects a full-width INCR burst over
        contiguous addresses; False selects narrow element-per-beat
        transfers.  Ignored for packed requests.
    pack:
        Decoded AXI-Pack user field (mode NONE for plain AXI4).
    index_base:
        Absolute byte address of the index array for indirect bursts.
    """

    addr: int
    is_write: bool
    num_elements: int
    elem_bytes: int
    bus_bytes: int
    contiguous: bool = False
    pack: PackUserField = field(default=PLAIN_AXI4_FIELD)
    index_base: int = 0
    txn_id: int = field(default_factory=next_txn_id)
    burst: BurstType = BurstType.INCR

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise ProtocolError("a burst must carry at least one element")
        if self.elem_bytes < 1 or self.bus_bytes < 1:
            raise ConfigurationError("element and bus sizes must be positive")
        if self.elem_bytes > self.bus_bytes:
            raise ProtocolError(
                f"element size {self.elem_bytes}B exceeds bus width {self.bus_bytes}B"
            )
        if self.pack.mode.is_packed and self.bus_bytes % self.elem_bytes != 0:
            raise ProtocolError(
                "packed bursts require the bus width to be a multiple of the "
                f"element size (bus {self.bus_bytes}B, element {self.elem_bytes}B)"
            )
        self.validate()

    # ------------------------------------------------------------ geometry
    #
    # The geometry attributes below are pure functions of the constructor
    # fields; they are evaluated on hot simulation paths (every beat of every
    # burst), so they are cached on first access.  Requests are treated as
    # immutable once built — interconnect blocks that reshape bursts create
    # new ``BusRequest`` objects instead of mutating fields in place.

    @cached_property
    def mode(self) -> PackMode:
        """Pack mode shortcut."""
        return self.pack.mode

    @cached_property
    def is_packed(self) -> bool:
        """True for AXI-Pack strided/indirect bursts."""
        return self.pack.mode.is_packed

    @cached_property
    def is_narrow(self) -> bool:
        """True for plain AXI4 element-per-beat (narrow) transfers."""
        return not self.is_packed and not self.contiguous

    @cached_property
    def elems_per_beat(self) -> int:
        """Number of elements carried by one full data beat."""
        if self.is_narrow:
            return 1
        return self.bus_bytes // self.elem_bytes

    @cached_property
    def beat_bytes(self) -> int:
        """Bytes transferred per beat (the AxSIZE granularity)."""
        if self.is_narrow:
            return self.elem_bytes
        return self.bus_bytes

    @cached_property
    def payload_bytes(self) -> int:
        """Useful payload carried by the burst (excluding padding/indices)."""
        return self.num_elements * self.elem_bytes

    @cached_property
    def num_beats(self) -> int:
        """Number of data beats the burst occupies on the bus."""
        if self.is_packed:
            # AXI-Pack bursts start bus-aligned by definition (paper §II-A).
            return ceil_div(self.payload_bytes, self.bus_bytes)
        if self.contiguous:
            misalignment = self.addr % self.bus_bytes
            return ceil_div(misalignment + self.payload_bytes, self.bus_bytes)
        return self.num_elements

    def beat_elements(self, beat: int) -> Tuple[int, int]:
        """Return the ``(first, last_exclusive)`` element range of one beat.

        Only meaningful for packed and narrow requests, where elements map
        cleanly onto beats; contiguous requests should use
        :meth:`beat_byte_range` instead.
        """
        if not 0 <= beat < self.num_beats:
            raise ProtocolError(
                f"beat {beat} out of range for {self.num_beats}-beat burst"
            )
        if self.contiguous and not self.is_packed:
            raise ProtocolError(
                "beat_elements is undefined for contiguous bursts; "
                "use beat_byte_range"
            )
        per_beat = self.elems_per_beat
        start = beat * per_beat
        end = min(self.num_elements, start + per_beat)
        return start, end

    def beat_byte_range(self, beat: int) -> Tuple[int, int]:
        """Return the absolute ``[start, end)`` byte range of a contiguous beat."""
        if not self.contiguous or self.is_packed:
            raise ProtocolError("beat_byte_range only applies to contiguous bursts")
        if not 0 <= beat < self.num_beats:
            raise ProtocolError(
                f"beat {beat} out of range for {self.num_beats}-beat burst"
            )
        line_base = (self.addr // self.bus_bytes + beat) * self.bus_bytes
        start = max(self.addr, line_base)
        end = min(self.addr + self.payload_bytes, line_base + self.bus_bytes)
        return start, end

    def beat_useful_bytes(self, beat: int) -> int:
        """Useful payload bytes carried by one particular beat."""
        if self.contiguous and not self.is_packed:
            start, end = self.beat_byte_range(beat)
            return end - start
        start, end = self.beat_elements(beat)
        return (end - start) * self.elem_bytes

    # ------------------------------------------------------------ validation
    def validate(self, layout: PackUserLayout = DEFAULT_LAYOUT) -> None:
        """Check AXI4 / AXI-Pack legality rules; raise ProtocolError if broken."""
        if self.is_packed:
            check_burst_len_legal(self.num_beats)
            # Round-trip the user field to make sure it is encodable.
            self.pack.encode(layout)
            if self.pack.mode is PackMode.INDIRECT and self.index_base < 0:
                raise ProtocolError("indirect bursts need a non-negative index base")
        elif self.contiguous:
            check_burst_len_legal(self.num_beats)
            # The 4KiB rule applies to the bytes actually addressed (the first
            # and last beat may be partial, so use the payload extent).
            first_page = self.addr // 4096
            last_page = (self.addr + self.payload_bytes - 1) // 4096
            if first_page != last_page:
                raise ProtocolError(
                    f"AXI4 INCR burst from {self.addr:#x} for "
                    f"{self.payload_bytes} bytes crosses a 4KiB boundary"
                )
        else:
            check_burst_len_legal(self.num_beats)

    # ------------------------------------------------------------ conversion
    def to_channel_beat(self, layout: PackUserLayout = DEFAULT_LAYOUT):
        """Lower the request to the corresponding AR or AW channel record."""
        user = self.pack.encode(layout)
        if self.is_write:
            return AWBeat(
                txn_id=self.txn_id,
                addr=self.addr,
                num_beats=self.num_beats,
                beat_bytes=self.beat_bytes,
                burst=self.burst,
                user=user,
            )
        return ARBeat(
            txn_id=self.txn_id,
            addr=self.addr,
            num_beats=self.num_beats,
            beat_bytes=self.beat_bytes,
            burst=self.burst,
            user=user,
        )

    # ------------------------------------------------------------- describe
    def describe(self) -> str:
        """One-line human-readable summary (used in traces and errors)."""
        kind = "write" if self.is_write else "read"
        if self.pack.mode is PackMode.STRIDED:
            detail = f"stride={self.pack.stride_elems}"
        elif self.pack.mode is PackMode.INDIRECT:
            detail = f"idx_base={self.index_base:#x} idx_bytes={self.pack.index_bytes}"
        elif self.contiguous:
            detail = "contiguous"
        else:
            detail = "narrow"
        return (
            f"{kind} {self.pack.mode.value} addr={self.addr:#x} "
            f"elems={self.num_elements}x{self.elem_bytes}B beats={self.num_beats} {detail}"
        )
