"""AXI-Pack AR/AW ``user``-field encoding (paper Fig. 1).

AXI-Pack rides entirely on the AXI4 ``user`` sideband of the request
channels, which is what keeps it backward compatible: an interconnect block
that does not reshape bursts simply forwards the user bits untouched.

The field layout is::

    bit 0              : pack   — 1 if the AXI-Pack extension is active
    bit 1              : indir  — 0 = strided burst, 1 = indirect burst
    bits 2 .. 2+W-1    : shared payload
                           strided  : element stride (in elements, unsigned)
                           indirect : index size code (2 bits) + index base
                                      offset (remaining bits)

The index size code encodes 8/16/32/64-bit indices as 0..3.  The index base
offset is expressed in units of the index size (i.e. it is an index-element
number), mirroring the ``idx base`` / ``offs`` fields of Fig. 1; the endpoint
reconstructs the absolute index array address as ``offset * index_bytes``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, ProtocolError
from repro.utils.bitutils import extract_field, insert_field, mask


class PackMode(enum.Enum):
    """How a request uses the AXI-Pack extension."""

    NONE = "none"          #: plain AXI4 burst, user field all zero
    STRIDED = "strided"    #: pack=1, indir=0 — bus-packed strided burst
    INDIRECT = "indirect"  #: pack=1, indir=1 — bus-packed indirect burst

    @property
    def is_packed(self) -> bool:
        """True for the two AXI-Pack burst types."""
        return self is not PackMode.NONE


#: Index element sizes supported by the indirect burst type, bytes -> code.
INDEX_SIZE_CODES = {1: 0, 2: 1, 4: 2, 8: 3}
INDEX_CODE_SIZES = {code: size for size, code in INDEX_SIZE_CODES.items()}


@dataclass(frozen=True)
class PackUserLayout:
    """Bit widths of the AXI-Pack user-field payload.

    Parameters
    ----------
    stride_bits:
        Width of the element-stride field for strided bursts.
    offset_bits:
        Width of the index-base-offset field for indirect bursts.

    The total user width is ``2 + max(stride_bits, 2 + offset_bits)``.
    """

    stride_bits: int = 24
    offset_bits: int = 28

    def __post_init__(self) -> None:
        if self.stride_bits < 1 or self.offset_bits < 1:
            raise ConfigurationError("user-field sub-field widths must be positive")

    @property
    def payload_bits(self) -> int:
        """Width of the shared payload region (stride or idx size + offset)."""
        return max(self.stride_bits, 2 + self.offset_bits)

    @property
    def total_bits(self) -> int:
        """Total AR/AW user signal width required by AXI-Pack."""
        return 2 + self.payload_bits


DEFAULT_LAYOUT = PackUserLayout()


@dataclass(frozen=True)
class PackUserField:
    """Decoded contents of an AXI-Pack AR/AW user field.

    Attributes
    ----------
    mode:
        Whether the request is plain AXI4, packed-strided or packed-indirect.
    stride_elems:
        Element stride for strided bursts (distance between consecutive
        stream elements, measured in elements).  Ignored otherwise.
    index_bytes:
        Size of one index in bytes for indirect bursts.  Ignored otherwise.
    index_offset:
        Location of the index array base, measured in index elements
        (absolute address = ``index_offset * index_bytes``).  Ignored for
        non-indirect bursts.
    """

    mode: PackMode = PackMode.NONE
    stride_elems: int = 0
    index_bytes: int = 4
    index_offset: int = 0

    # ---------------------------------------------------------------- encode
    def encode(self, layout: PackUserLayout = DEFAULT_LAYOUT) -> int:
        """Encode this field into the integer carried on the user signal."""
        if self.mode is PackMode.NONE:
            return 0
        word = 0
        word = insert_field(word, 0, 1, 1)  # pack bit
        if self.mode is PackMode.STRIDED:
            word = insert_field(word, 1, 1, 0)
            if self.stride_elems < 0:
                raise ProtocolError("strided bursts require a non-negative stride")
            if self.stride_elems > mask(layout.stride_bits):
                raise ProtocolError(
                    f"stride {self.stride_elems} does not fit in "
                    f"{layout.stride_bits} bits"
                )
            word = insert_field(word, 2, layout.stride_bits, self.stride_elems)
        else:
            word = insert_field(word, 1, 1, 1)
            if self.index_bytes not in INDEX_SIZE_CODES:
                raise ProtocolError(
                    f"unsupported index size {self.index_bytes} bytes; "
                    f"supported: {sorted(INDEX_SIZE_CODES)}"
                )
            if not 0 <= self.index_offset <= mask(layout.offset_bits):
                raise ProtocolError(
                    f"index offset {self.index_offset} does not fit in "
                    f"{layout.offset_bits} bits"
                )
            word = insert_field(word, 2, 2, INDEX_SIZE_CODES[self.index_bytes])
            word = insert_field(word, 4, layout.offset_bits, self.index_offset)
        return word

    # ---------------------------------------------------------------- decode
    @classmethod
    def decode(
        cls, word: int, layout: PackUserLayout = DEFAULT_LAYOUT
    ) -> "PackUserField":
        """Decode an integer user signal back into a :class:`PackUserField`."""
        if word < 0:
            raise ProtocolError("user field must be a non-negative integer")
        pack = extract_field(word, 0, 1)
        if not pack:
            if word != 0:
                raise ProtocolError(
                    "non-zero user field with pack bit clear is not AXI-Pack"
                )
            return cls(mode=PackMode.NONE)
        indir = extract_field(word, 1, 1)
        if not indir:
            stride = extract_field(word, 2, layout.stride_bits)
            return cls(mode=PackMode.STRIDED, stride_elems=stride)
        code = extract_field(word, 2, 2)
        offset = extract_field(word, 4, layout.offset_bits)
        return cls(
            mode=PackMode.INDIRECT,
            index_bytes=INDEX_CODE_SIZES[code],
            index_offset=offset,
        )

    # ----------------------------------------------------------- constructors
    @classmethod
    def strided(cls, stride_elems: int) -> "PackUserField":
        """Build the user field for a packed strided burst."""
        return cls(mode=PackMode.STRIDED, stride_elems=stride_elems)

    @classmethod
    def indirect(cls, index_bytes: int, index_base_addr: int) -> "PackUserField":
        """Build the user field for a packed indirect burst.

        ``index_base_addr`` is the absolute byte address of the index array;
        it must be aligned to the index size.
        """
        if index_base_addr % index_bytes != 0:
            raise ProtocolError(
                f"index base {index_base_addr:#x} is not aligned to the "
                f"{index_bytes}-byte index size"
            )
        return cls(
            mode=PackMode.INDIRECT,
            index_bytes=index_bytes,
            index_offset=index_base_addr // index_bytes,
        )

    @property
    def index_base_addr(self) -> int:
        """Absolute byte address of the index array (indirect bursts only)."""
        return self.index_offset * self.index_bytes


#: Shared plain-AXI4 user field.  ``PackUserField`` is frozen, so every
#: unpacked request can reference this one instance instead of building a
#: fresh field (narrow BASE lowering creates one request per element).
PLAIN_AXI4_FIELD = PackUserField()
