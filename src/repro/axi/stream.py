"""Memory stream descriptors.

A *stream* describes what a requestor (the vector unit's VLSU, a DMA engine,
an accelerator) wants from memory: a sequence of equally sized elements at
contiguous, strided or index-driven addresses.  Streams are protocol
agnostic; :mod:`repro.axi.builder` lowers them either to plain AXI4 requests
(the BASE system) or to AXI-Pack bursts (the PACK system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bitutils import is_power_of_two
from repro.utils.validation import check_positive


def _check_elem_bytes(elem_bytes: int) -> None:
    if elem_bytes <= 0 or not is_power_of_two(elem_bytes):
        raise ConfigurationError(
            f"element size must be a positive power of two in bytes, got {elem_bytes}"
        )


@dataclass(frozen=True)
class ContiguousStream:
    """``num_elements`` elements of ``elem_bytes`` bytes starting at ``base``."""

    base: int
    num_elements: int
    elem_bytes: int

    def __post_init__(self) -> None:
        check_positive("num_elements", self.num_elements)
        _check_elem_bytes(self.elem_bytes)
        if self.base < 0:
            raise ConfigurationError("stream base address must be non-negative")

    @property
    def total_bytes(self) -> int:
        """Total payload carried by the stream."""
        return self.num_elements * self.elem_bytes

    def element_addresses(self) -> np.ndarray:
        """Byte address of every element, in stream order."""
        return self.base + np.arange(self.num_elements, dtype=np.int64) * self.elem_bytes


@dataclass(frozen=True)
class StridedStream:
    """Elements separated by a constant stride (in elements).

    ``stride_elems`` follows the paper's convention: the distance between
    consecutive stream elements measured in elements, so a stride of 1 is a
    contiguous access and a stride of 0 repeatedly reads the same element.
    """

    base: int
    num_elements: int
    elem_bytes: int
    stride_elems: int

    def __post_init__(self) -> None:
        check_positive("num_elements", self.num_elements)
        _check_elem_bytes(self.elem_bytes)
        if self.base < 0:
            raise ConfigurationError("stream base address must be non-negative")
        if self.stride_elems < 0:
            raise ConfigurationError("stride must be non-negative")

    @property
    def stride_bytes(self) -> int:
        """Stride between consecutive elements in bytes."""
        return self.stride_elems * self.elem_bytes

    @property
    def total_bytes(self) -> int:
        """Total payload carried by the stream."""
        return self.num_elements * self.elem_bytes

    def element_addresses(self) -> np.ndarray:
        """Byte address of every element, in stream order."""
        return (
            self.base
            + np.arange(self.num_elements, dtype=np.int64) * self.stride_bytes
        )


@dataclass(frozen=True)
class IndirectStream:
    """Elements gathered/scattered through an in-memory index array.

    The address of element *i* is ``base + index[i] * elem_bytes`` when
    ``scaled`` is True (indices are element numbers, the natural encoding for
    CSR column indices) or ``base + index[i]`` when False (byte offsets, the
    RVV ``vluxei`` convention).  The index array itself lives in memory at
    ``index_base`` with ``index_bytes`` per index — this is the key
    difference from register-indexed accesses and what allows the memory-side
    controller to perform the indirection.
    """

    base: int
    num_elements: int
    elem_bytes: int
    index_base: int
    index_bytes: int = 4
    scaled: bool = True

    def __post_init__(self) -> None:
        check_positive("num_elements", self.num_elements)
        _check_elem_bytes(self.elem_bytes)
        if self.index_bytes not in (1, 2, 4, 8):
            raise ConfigurationError(
                f"index size must be 1, 2, 4 or 8 bytes, got {self.index_bytes}"
            )
        if self.base < 0 or self.index_base < 0:
            raise ConfigurationError("stream base addresses must be non-negative")

    @property
    def total_bytes(self) -> int:
        """Total element payload carried by the stream (indices excluded)."""
        return self.num_elements * self.elem_bytes

    @property
    def index_bytes_total(self) -> int:
        """Total size of the index array consumed by the stream."""
        return self.num_elements * self.index_bytes

    def element_addresses(self, indices: np.ndarray) -> np.ndarray:
        """Byte address of every element given the index values.

        Parameters
        ----------
        indices:
            The ``num_elements`` index values read from ``index_base``.
        """
        if len(indices) != self.num_elements:
            raise ConfigurationError(
                f"expected {self.num_elements} indices, got {len(indices)}"
            )
        scale = self.elem_bytes if self.scaled else 1
        return self.base + indices.astype(np.int64) * scale

    def index_addresses(self) -> np.ndarray:
        """Byte address of every index in the in-memory index array."""
        return (
            self.index_base
            + np.arange(self.num_elements, dtype=np.int64) * self.index_bytes
        )


#: Any of the three stream shapes.
Stream = Union[ContiguousStream, StridedStream, IndirectStream]
