"""The cycle-driven simulation engine."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.component import Component
from repro.sim.queue import DecoupledQueue, LatencyPipe
from repro.sim.stats import StatsRegistry


class Engine:
    """Owns components and queues and advances them cycle by cycle.

    The per-cycle evaluation order is:

    1. every registered component's :meth:`~repro.sim.component.Component.tick`
       is called (order does not affect results because queue pushes are not
       visible until commit);
    2. every registered queue is committed and every latency pipe advanced;
    3. the cycle counter increments.

    ``run_until`` detects deadlock by watching total queue activity: if no
    item is pushed or popped anywhere for ``deadlock_window`` consecutive
    cycles while components still report busy, a :class:`DeadlockError` is
    raised with a snapshot of component states to aid debugging.
    """

    def __init__(self, deadlock_window: int = 10_000) -> None:
        self.cycle = 0
        self.stats = StatsRegistry()
        self.deadlock_window = deadlock_window
        self._components: List[Component] = []
        self._queues: List[DecoupledQueue] = []
        self._pipes: List[LatencyPipe] = []

    # ------------------------------------------------------------ registration
    def add_component(self, component: Component) -> Component:
        """Register a component to be ticked every cycle."""
        self._components.append(component)
        return component

    def add_queue(self, queue: DecoupledQueue) -> DecoupledQueue:
        """Register a queue to be committed at the end of every cycle."""
        self._queues.append(queue)
        return queue

    def new_queue(self, name: str, depth: int) -> DecoupledQueue:
        """Create and register a queue in one call."""
        return self.add_queue(DecoupledQueue(name, depth))

    def add_pipe(self, pipe: LatencyPipe) -> LatencyPipe:
        """Register a fixed-latency pipe to be advanced every cycle."""
        self._pipes.append(pipe)
        return pipe

    # ----------------------------------------------------------------- running
    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` clock cycles."""
        for _ in range(cycles):
            for component in self._components:
                component.tick(self.cycle)
            for queue in self._queues:
                queue.commit()
            for pipe in self._pipes:
                pipe.advance()
            self.cycle += 1

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int = 50_000_000,
    ) -> int:
        """Run until ``done()`` returns True; return the cycle count.

        Raises
        ------
        DeadlockError
            If no queue activity is observed for ``deadlock_window`` cycles.
        SimulationError
            If ``max_cycles`` elapse without completion.
        """
        start_cycle = self.cycle
        idle_cycles = 0
        last_activity = self._activity()
        while not done():
            if self.cycle - start_cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without completing"
                )
            self.step()
            activity = self._activity()
            if activity == last_activity:
                idle_cycles += 1
                if idle_cycles >= self.deadlock_window:
                    raise DeadlockError(self._deadlock_report())
            else:
                idle_cycles = 0
                last_activity = activity
        return self.cycle - start_cycle

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until every component reports idle and every queue is empty."""
        return self.run_until(self._all_idle, max_cycles=max_cycles)

    # ----------------------------------------------------------------- helpers
    def _activity(self) -> int:
        return sum(q.total_pushed + q.total_popped for q in self._queues)

    def _all_idle(self) -> bool:
        if any(component.busy() for component in self._components):
            return False
        if any(not queue.is_empty() for queue in self._queues):
            return False
        return all(pipe.is_empty() for pipe in self._pipes)

    def _deadlock_report(self) -> str:
        busy = [c.name for c in self._components if c.busy()]
        stuck = [
            f"{q.name}({q.occupancy}/{q.depth})"
            for q in self._queues
            if not q.is_empty()
        ]
        return (
            f"no forward progress for {self.deadlock_window} cycles at cycle "
            f"{self.cycle}; busy components: {busy}; non-empty queues: {stuck}"
        )

    def reset(self) -> None:
        """Reset cycle count, statistics, components, queues and pipes."""
        self.cycle = 0
        self.stats.reset()
        for component in self._components:
            component.reset()
        for queue in self._queues:
            queue.clear()
