"""The event-driven cycle simulation engine.

Per-cycle evaluation keeps the seed engine's two-phase contract:

1. every component *due* this cycle has its
   :meth:`~repro.sim.component.Component.tick` called (order does not affect
   results because queue pushes are not visible until commit);
2. every queue touched this cycle is committed, every component subscribed
   to a touched queue is woken for the next cycle, and every latency pipe is
   advanced;
3. the cycle counter increments.

What makes the engine event-driven is *which* components are due: each tick
returns a wake hint (see :mod:`repro.sim.component`), and a component is
only revisited at its hinted cycle or when one of its subscribed queues sees
activity.  When no component is due at the current cycle at all,
:meth:`Engine.run_until` fast-forwards the cycle counter straight to the
earliest wake — preserving exact cycle counts, statistics, deadlock
detection and ``max_cycles`` semantics, because a skipped window is by
construction free of ticks and queue activity.

Deadlock detection watches total queue activity through an O(1) counter
incremented by the queues themselves (instead of summing every queue's
totals each cycle): if no item is pushed or popped anywhere for
``deadlock_window`` consecutive cycles, a :class:`DeadlockError` is raised
with a snapshot of component states to aid debugging.

For A/B comparison and regression hunting the seed behaviour is still
available: construct ``Engine(event_driven=False)`` or set the environment
variable ``REPRO_SIM_ENGINE=naive`` to tick every component and commit every
queue on every cycle.  Both modes produce identical cycle counts and
statistics; the event-driven mode is simply faster.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.component import IDLE, Component
from repro.sim.queue import DecoupledQueue, LatencyPipe


def _default_event_driven() -> bool:
    """Engine mode default: event-driven unless REPRO_SIM_ENGINE=naive."""
    return os.environ.get("REPRO_SIM_ENGINE", "event").strip().lower() != "naive"


@dataclass(frozen=True)
class QueueState:
    """Occupancy snapshot of one simulation queue at diagnosis time."""

    name: str
    occupancy: int
    depth: int
    #: components subscribed to (i.e. woken by) this queue — the candidates
    #: that should have drained it
    waiters: Tuple[str, ...]

    def describe(self) -> str:
        consumers = ", ".join(self.waiters) if self.waiters else "<none>"
        return f"{self.name} ({self.occupancy}/{self.depth}; waiters: {consumers})"


@dataclass(frozen=True)
class HangDiagnosis:
    """Structured snapshot of a simulation that stopped making progress.

    Attached to :class:`~repro.errors.DeadlockError` (``.diagnosis``) so
    harnesses and the CLI can render *why* a run wedged instead of just that
    it did: which components still claim outstanding work, which queues hold
    undelivered items, and the single most-suspect queue (``blame`` — the
    fullest stuck queue, whose subscribed consumers stopped draining it).
    """

    cycle: int
    window: int
    busy_components: Tuple[str, ...]
    queues: Tuple[QueueState, ...]
    blame: Optional[QueueState]

    def to_dict(self) -> dict:
        """Plain JSON-serializable form for logs and supervision journals."""
        return {
            "cycle": self.cycle,
            "window": self.window,
            "busy_components": list(self.busy_components),
            "queues": [
                {"name": q.name, "occupancy": q.occupancy, "depth": q.depth,
                 "waiters": list(q.waiters)}
                for q in self.queues
            ],
            "blame": None if self.blame is None else self.blame.name,
        }

    def render(self) -> str:
        """Multi-line human-readable rendering (CLI error output)."""
        lines = [
            f"no forward progress for {self.window} cycles at cycle {self.cycle}",
            "busy components: "
            + (", ".join(self.busy_components) if self.busy_components else "<none>"),
        ]
        if self.queues:
            lines.append("non-empty queues:")
            lines.extend(f"  {q.describe()}" for q in self.queues)
        else:
            lines.append("non-empty queues: <none>")
        if self.blame is not None:
            lines.append(
                f"blame: {self.blame.describe()} — fullest stuck queue; its "
                "waiters stopped draining it"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line form, compatible with the pre-diagnosis report string."""
        stuck = [f"{q.name}({q.occupancy}/{q.depth})" for q in self.queues]
        return (
            f"no forward progress for {self.window} cycles at cycle "
            f"{self.cycle}; busy components: {list(self.busy_components)}; "
            f"non-empty queues: {stuck}"
        )


class Engine:
    """Owns components and queues and advances them cycle by cycle."""

    def __init__(
        self,
        deadlock_window: int = 10_000,
        event_driven: Optional[bool] = None,
    ) -> None:
        from repro.sim.stats import StatsRegistry

        if event_driven is None:
            event_driven = _default_event_driven()
        self.event_driven = event_driven
        self.cycle = 0
        self.stats = StatsRegistry()
        self.deadlock_window = deadlock_window
        self._components: List[Component] = []
        self._wakes: List[float] = []  #: next due cycle per component slot
        self._queues: List[DecoupledQueue] = []
        self._pipes: List[LatencyPipe] = []
        self._activity = 0  #: O(1) push/pop counter, bumped by bound queues
        self._touched_queues: List[DecoupledQueue] = []  #: dirty list, per cycle

    # ------------------------------------------------------------ registration
    def add_component(self, component: Component) -> Component:
        """Register a component; it is due immediately and then follows hints."""
        component._engine_slot = len(self._components)
        self._components.append(component)
        self._wakes.append(self.cycle)
        for queue in component.wake_queues():
            self._subscribe(component, queue)
        return component

    def _subscribe(self, component: Component, queue: DecoupledQueue) -> None:
        """Wake ``component`` whenever ``queue`` sees a push or pop."""
        if queue._waiters_engine is not self:
            queue._waiters_engine = self
            queue._waiters = []
        if component not in queue._waiters:
            queue._waiters.append(component)

    def add_queue(self, queue: DecoupledQueue) -> DecoupledQueue:
        """Register a queue: it joins the engine's dirty/wake bookkeeping."""
        self._queues.append(queue)
        queue._engine = self
        queue._touched = False
        if queue._waiters_engine is not self:
            queue._waiters_engine = self
            queue._waiters = []
        if queue._incoming:
            # Items pushed before registration must still commit next cycle.
            queue._touched = True
            self._touched_queues.append(queue)
        return queue

    def new_queue(self, name: str, depth: int) -> DecoupledQueue:
        """Create and register a queue in one call."""
        return self.add_queue(DecoupledQueue(name, depth))

    def add_pipe(self, pipe: LatencyPipe) -> LatencyPipe:
        """Register a fixed-latency pipe to be advanced every cycle."""
        self._pipes.append(pipe)
        return pipe

    # ----------------------------------------------------------------- running
    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` clock cycles (no skipping)."""
        for _ in range(cycles):
            self._step_one()

    def _step_one(self) -> None:
        """Advance exactly one cycle: tick due components, commit, wake."""
        cycle = self.cycle
        wakes = self._wakes
        if self.event_driven:
            for slot, component in enumerate(self._components):
                if wakes[slot] <= cycle:
                    hint = component.tick(cycle)
                    wakes[slot] = cycle + 1 if hint is None else hint
        else:
            for component in self._components:
                component.tick(cycle)
        touched = self._touched_queues
        if touched:
            next_cycle = cycle + 1
            for queue in touched:
                queue._touched = False
                if queue._incoming:
                    queue.commit()
                for waiter in queue._waiters:
                    slot = waiter._engine_slot
                    if wakes[slot] > next_cycle:
                        wakes[slot] = next_cycle
            del touched[:]
        if not self.event_driven:
            # Seed behaviour: every queue committed every cycle.
            for queue in self._queues:
                queue.commit()
        for pipe in self._pipes:
            pipe.advance()
        self.cycle = cycle + 1

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int = 50_000_000,
    ) -> int:
        """Run until ``done()`` returns True; return the cycle count.

        In event-driven mode, windows in which no component is due are
        skipped in one jump (``done()`` cannot change inside such a window:
        no tick runs and no queue moves).  Deadlock and ``max_cycles``
        accounting treat skipped cycles exactly as if they had been stepped
        one by one.

        Raises
        ------
        DeadlockError
            If no queue activity is observed for ``deadlock_window`` cycles.
        SimulationError
            If ``max_cycles`` elapse without completion.
        """
        if not self.event_driven:
            return self._run_until_naive(done, max_cycles)
        start_cycle = self.cycle
        idle_cycles = 0
        last_activity = self._activity
        window = self.deadlock_window
        # The loop below is the simulator's hottest code: the body of
        # ``_step_one`` is inlined and containers are hoisted into locals
        # (registration mutates them in place, so identity is stable).
        wakes = self._wakes
        components = self._components
        pipes = self._pipes
        touched = self._touched_queues
        while not done():
            cycle = self.cycle
            if cycle - start_cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without completing"
                )
            # Tick every due component; due-ness is discovered during the
            # scan itself, so busy cycles never pay a separate min(wakes).
            ticked = False
            for slot, component in enumerate(components):
                if wakes[slot] <= cycle:
                    hint = component.tick(cycle)
                    wakes[slot] = cycle + 1 if hint is None else hint
                    ticked = True
            # A dirty queue (e.g. pushed from outside the engine between
            # runs) counts as work due this cycle: stepping commits it and
            # wakes its subscribers, exactly like naive stepping would.
            if not ticked and not touched:
                # Nothing is due at the current cycle: fast-forward to the
                # earliest wake, stopping where deadlock detection or the
                # cycle budget would have fired during naive stepping.  An
                # in-flight latency pipe bounds the jump to its maturity
                # cycle (hinted pipe consumers also carry that cycle in
                # their own hints; legacy consumers pin stepping anyway).
                next_wake = min(wakes) if wakes else IDLE
                target = min(
                    next_wake,
                    cycle + (window - idle_cycles),
                    start_cycle + max_cycles,
                )
                if pipes:
                    for pipe in pipes:
                        ready = pipe.next_ready_cycle()
                        if ready is not None and cycle < ready < target:
                            target = ready
                # ceil: a fractional wake hint must not truncate to a
                # zero-cycle jump (the loop would never advance).
                skipped = math.ceil(target) - cycle
                idle_cycles += skipped
                if pipes:
                    for pipe in pipes:
                        pipe.advance(skipped)
                self.cycle = cycle + skipped
                if idle_cycles >= window:
                    raise self._deadlock_error()
                continue
            if touched:
                next_cycle = cycle + 1
                for queue in touched:
                    queue._touched = False
                    incoming = queue._incoming
                    if incoming:
                        # Inlined DecoupledQueue.commit.
                        storage = queue._storage
                        storage.extend(incoming)
                        incoming.clear()
                        if len(storage) > queue.max_occupancy:
                            queue.max_occupancy = len(storage)
                    for waiter in queue._waiters:
                        slot = waiter._engine_slot
                        if wakes[slot] > next_cycle:
                            wakes[slot] = next_cycle
                del touched[:]
            if pipes:
                for pipe in pipes:
                    pipe.advance()
            self.cycle = cycle + 1
            activity = self._activity
            if activity == last_activity:
                idle_cycles += 1
                if idle_cycles >= window:
                    raise self._deadlock_error()
            else:
                idle_cycles = 0
                last_activity = activity
        return self.cycle - start_cycle

    def _run_until_naive(
        self, done: Callable[[], bool], max_cycles: int
    ) -> int:
        """Seed run loop: step every cycle, O(queues) activity scan."""
        start_cycle = self.cycle
        idle_cycles = 0
        last_activity = self._activity_totals()
        while not done():
            if self.cycle - start_cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without completing"
                )
            self._step_one()
            activity = self._activity_totals()
            if activity == last_activity:
                idle_cycles += 1
                if idle_cycles >= self.deadlock_window:
                    raise self._deadlock_error()
            else:
                idle_cycles = 0
                last_activity = activity
        return self.cycle - start_cycle

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until every component reports idle and every queue is empty."""
        return self.run_until(self._all_idle, max_cycles=max_cycles)

    # ----------------------------------------------------------------- helpers
    def _activity_totals(self) -> int:
        """Seed-style activity scan (kept for the naive compatibility mode)."""
        return sum(q.total_pushed + q.total_popped for q in self._queues)

    def _all_idle(self) -> bool:
        if any(component.busy() for component in self._components):
            return False
        if any(not queue.is_empty() for queue in self._queues):
            return False
        return all(pipe.is_empty() for pipe in self._pipes)

    def diagnose(self) -> HangDiagnosis:
        """Snapshot why the simulation is (or appears) wedged, right now.

        Public so harnesses can inspect a hung-but-not-yet-deadlocked run;
        the deadlock detector attaches the same snapshot to its
        :class:`~repro.errors.DeadlockError`.
        """
        busy = tuple(c.name for c in self._components if c.busy())
        queues = tuple(
            QueueState(
                name=q.name, occupancy=q.occupancy, depth=q.depth,
                waiters=tuple(w.name for w in q._waiters),
            )
            for q in self._queues
            if not q.is_empty()
        )
        blame = max(
            queues,
            key=lambda q: (q.occupancy / q.depth if q.depth else 0.0,
                           q.occupancy),
            default=None,
        )
        return HangDiagnosis(
            cycle=self.cycle, window=self.deadlock_window,
            busy_components=busy, queues=queues, blame=blame,
        )

    def _deadlock_error(self) -> DeadlockError:
        diagnosis = self.diagnose()
        return DeadlockError(diagnosis.render(), diagnosis=diagnosis)

    def reset(self) -> None:
        """Reset cycle count, statistics, components, queues and pipes."""
        self.cycle = 0
        self.stats.reset()
        self._wakes = [0] * len(self._components)
        for component in self._components:
            component.reset()
        for queue in self._queues:
            queue.clear()
        for queue in self._touched_queues:
            queue._touched = False
        del self._touched_queues[:]
