"""Ready/valid handshaked FIFO used to connect components.

The queue models a hardware FIFO with registered outputs: items pushed during
cycle *N* can be popped no earlier than cycle *N + 1*.  The engine calls
:meth:`DecoupledQueue.commit` at the end of every cycle in which the queue
was pushed to, moving freshly pushed items into the visible storage.  Because
visibility only changes at commit time, the simulation result does not depend
on the order in which components are ticked within a cycle.

Queues registered with an :class:`~repro.sim.engine.Engine` additionally act
as the engine's *dirty/wake lists*: every push or pop marks the queue touched
(so only touched queues are committed at the end of the cycle), bumps the
engine's O(1) activity counter (used for deadlock detection), and wakes every
component subscribed to the queue for the next cycle.  Unregistered queues
behave exactly like plain FIFOs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, Iterator, List, Optional, TypeVar

from repro.errors import SimulationError
from repro.utils.validation import check_positive

ItemT = TypeVar("ItemT")


class DecoupledQueue(Generic[ItemT]):
    """Bounded FIFO with ready/valid semantics and registered outputs.

    Parameters
    ----------
    name:
        Human-readable identifier used in error messages and traces.
    depth:
        Maximum number of items the queue can hold (committed plus pending).
        This corresponds to the decoupling-queue depth parameter of the
        paper's converters (default 4, raised to 32 for the sensitivity
        study in §III-E).
    """

    __slots__ = (
        "name",
        "depth",
        "_storage",
        "_incoming",
        "_count",
        "total_pushed",
        "total_popped",
        "max_occupancy",
        "_engine",
        "_touched",
        "_waiters",
        "_waiters_engine",
    )

    def __init__(self, name: str, depth: int) -> None:
        self.name = name
        self.depth = check_positive("queue depth", depth)
        self._storage: Deque[ItemT] = deque()
        self._incoming: List[ItemT] = []
        self._count = 0  #: committed + pending items, tracked incrementally
        self.total_pushed = 0
        self.total_popped = 0
        self.max_occupancy = 0
        # Engine integration (set by Engine.add_queue / add_component).
        self._engine: Any = None  #: owning engine, or None for standalone use
        self._touched = False  #: already on the engine's dirty list this cycle
        self._waiters: List = []  #: components woken by activity on this queue
        self._waiters_engine: Any = None  #: engine the waiter list belongs to

    # ------------------------------------------------------------------ push
    def can_push(self, count: int = 1) -> bool:
        """Return True if ``count`` more items fit this cycle."""
        return self._count + count <= self.depth

    def push(self, item: ItemT) -> None:
        """Push one item; raises if the queue is full (callers must check)."""
        if self._count >= self.depth:
            raise SimulationError(f"push to full queue {self.name!r}")
        self._incoming.append(item)
        self._count += 1
        self.total_pushed += 1
        engine = self._engine
        if engine is not None:
            engine._activity += 1
            if not self._touched:
                self._touched = True
                engine._touched_queues.append(self)

    def push_many(self, items) -> None:
        """Push a batch of items with exact aggregate bookkeeping.

        Semantically identical to pushing the items one by one: the engine's
        activity counter advances by ``len(items)`` (deadlock detection sees
        every item) while the dirty-list marking happens once.  Raises if
        the batch does not fit — callers check :meth:`can_push` with the
        batch size first.
        """
        count = len(items)
        if self._count + count > self.depth:
            raise SimulationError(f"push of {count} items to full queue {self.name!r}")
        self._incoming.extend(items)
        self._count += count
        self.total_pushed += count
        engine = self._engine
        if engine is not None:
            engine._activity += count
            if not self._touched:
                self._touched = True
                engine._touched_queues.append(self)

    # ------------------------------------------------------------------- pop
    def can_pop(self) -> bool:
        """Return True if an item is available to pop this cycle."""
        return bool(self._storage)

    def peek(self) -> ItemT:
        """Return the oldest committed item without removing it."""
        if not self._storage:
            raise SimulationError(f"peek on empty queue {self.name!r}")
        return self._storage[0]

    def pop(self) -> ItemT:
        """Remove and return the oldest committed item."""
        if not self._storage:
            raise SimulationError(f"pop from empty queue {self.name!r}")
        self.total_popped += 1
        self._count -= 1
        engine = self._engine
        if engine is not None:
            engine._activity += 1
            if not self._touched:
                self._touched = True
                engine._touched_queues.append(self)
        return self._storage.popleft()

    # ------------------------------------------------------------ bookkeeping
    def commit(self) -> None:
        """Make items pushed this cycle visible; called by the engine."""
        if self._incoming:
            self._storage.extend(self._incoming)
            self._incoming.clear()
        if len(self._storage) > self.max_occupancy:
            self.max_occupancy = len(self._storage)

    def clear(self) -> None:
        """Drop all contents (used by component reset)."""
        self._storage.clear()
        self._incoming.clear()
        self._count = 0
        engine = self._engine
        if engine is not None and not self._touched:
            # Wake subscribers (freed space / vanished items) but do not count
            # the clear as forward progress for deadlock detection.
            self._touched = True
            engine._touched_queues.append(self)

    @property
    def occupancy(self) -> int:
        """Number of committed items currently visible to consumers."""
        return len(self._storage)

    @property
    def pending(self) -> int:
        """Number of items pushed this cycle but not yet committed."""
        return len(self._incoming)

    def is_empty(self) -> bool:
        """Return True if the queue holds nothing, committed or pending."""
        return self._count == 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[ItemT]:
        return iter(list(self._storage) + list(self._incoming))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DecoupledQueue {self.name!r} {len(self._storage)}"
            f"+{len(self._incoming)}/{self.depth}>"
        )


class LatencyPipe(Generic[ItemT]):
    """Fixed-latency pipeline stage (e.g. SRAM access latency).

    Items pushed at cycle *N* become poppable at cycle *N + latency*.  Unlike
    :class:`DecoupledQueue`, the pipe never back-pressures: the producer is
    responsible for rate-limiting (this mirrors an SRAM macro, which accepts
    one request per cycle and always answers after a fixed latency).
    """

    __slots__ = ("name", "latency", "_in_flight", "_cycle")

    def __init__(self, name: str, latency: int) -> None:
        self.name = name
        if latency < 1:
            raise SimulationError("LatencyPipe latency must be at least 1 cycle")
        self.latency = latency
        self._in_flight: Deque[tuple] = deque()
        self._cycle = 0

    def push(self, item: ItemT) -> None:
        """Insert an item that will emerge ``latency`` cycles later."""
        self._in_flight.append((self._cycle + self.latency, item))

    def can_pop(self) -> bool:
        """Return True if the oldest item has reached its release cycle."""
        return bool(self._in_flight) and self._in_flight[0][0] <= self._cycle

    def pop(self) -> ItemT:
        """Remove and return the oldest matured item."""
        if not self.can_pop():
            raise SimulationError(f"pop from latency pipe {self.name!r} too early")
        return self._in_flight.popleft()[1]

    def advance(self, cycles: int = 1) -> None:
        """Advance the pipe's notion of time by ``cycles`` clock cycles.

        The engine advances pipes by more than one cycle at a time when it
        fast-forwards across idle windows; maturity only depends on the
        pipe's absolute cycle counter, so a bulk advance is exact.
        """
        self._cycle += cycles

    def next_ready_cycle(self) -> Optional[int]:
        """Cycle at which the oldest in-flight item matures (None if empty)."""
        if not self._in_flight:
            return None
        return self._in_flight[0][0]

    def is_empty(self) -> bool:
        """Return True if nothing is in flight."""
        return not self._in_flight

    def __len__(self) -> int:
        return len(self._in_flight)
