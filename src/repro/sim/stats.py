"""Named statistic counters shared by simulator components."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


@dataclass
class Counter:
    """A single named statistic with integer and float accumulation."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0.0


class StatsRegistry:
    """A flat namespace of counters, keyed by dotted names.

    Components create counters lazily via :meth:`counter`; analysis code
    reads them back with :meth:`as_dict` after a simulation completes.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it if needed."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def add(self, name: str, amount: float = 1.0) -> None:
        """Convenience: accumulate into (and lazily create) a counter."""
        self.counter(name).add(amount)

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the value of ``name``, or ``default`` if it never existed."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def as_dict(self) -> Mapping[str, float]:
        """Return a snapshot of all counters as a plain dictionary."""
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def reset(self) -> None:
        """Zero every counter while keeping the registry intact."""
        for counter in self._counters.values():
            counter.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)
