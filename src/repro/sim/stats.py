"""Named statistic counters shared by simulator components.

Hot components should *prebind* their counters once at construction time
(``self._c_reads = stats.counter("mem.word_reads")``) and bump
``counter.value`` directly in their per-cycle code, instead of paying a
registry dict lookup per event through :meth:`StatsRegistry.add`.  Both
paths accumulate into the same :class:`Counter` objects, so
:meth:`StatsRegistry.as_dict` snapshots are unaffected.
"""

from __future__ import annotations

from typing import Dict, Mapping


class Counter:
    """A single named statistic with integer and float accumulation."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter(name={self.name!r}, value={self.value!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return self.name == other.name and self.value == other.value


class StatsRegistry:
    """A flat namespace of counters, keyed by dotted names.

    Components create counters lazily via :meth:`counter`; analysis code
    reads them back with :meth:`as_dict` after a simulation completes.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it if needed."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def add(self, name: str, amount: float = 1.0) -> None:
        """Convenience: accumulate into (and lazily create) a counter."""
        self.counter(name).value += amount

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the value of ``name``, or ``default`` if it never existed."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def as_dict(self) -> Mapping[str, float]:
        """Return a snapshot of all counters as a plain dictionary."""
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def reset(self) -> None:
        """Zero every counter while keeping the registry intact."""
        for counter in self._counters.values():
            counter.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)
