"""Data policy of the simulated datapath: full payloads or timing only.

The headline experiments (the fig3/fig5 grids) consume *timing* outputs —
cycle counts, bus utilization, stall statistics — yet under the default
policy every simulated beat also materializes and copies real byte payloads
through the AXI channels, the converter pipes and the banked memory.  The
:class:`DataPolicy` makes that data plane optional:

``DataPolicy.FULL``
    Today's behaviour: every beat, word slot and bus payload carries real
    bytes, loads and stores move data end to end, and workload results can
    be verified against their reference implementations.

``DataPolicy.ELIDE``
    Timing only: beats, word slots and bus payloads carry *geometry*
    (lengths, strobes, word addresses) but no bytes.  The backing
    :class:`~repro.mem.storage.MemoryStorage` is never touched by the
    datapath, and workload result verification is skipped — results are
    explicitly marked ``verified=False``.

The one deliberate exception in ELIDE mode is *address-forming* data: index
arrays fetched by the indirect converters and index vector loads (``kind ==
"index"``) are still resolved functionally against the memory image the
workload initialized, because the element addresses they produce determine
bank conflicts and therefore timing.  With that exception in place, cycle
counts and every :class:`~repro.sim.stats.StatsRegistry` counter are
bit-identical between the two policies — the core invariant, enforced by
``tests/test_data_policy.py`` and the A/B check in
``benchmarks/bench_headline.py``.

ELIDE is sound whenever only timing outputs are consumed; it is unsound for
any flow that reads simulated memory or register contents afterwards
(verification, functional golden checks, result post-processing).
"""

from __future__ import annotations

import enum
import os
from typing import Optional, Union

#: Environment variable selecting the default policy (``full`` or ``elide``).
DATA_POLICY_ENV = "REPRO_DATA_POLICY"


class DataPolicy(enum.Enum):
    """How much of the data plane the simulated datapath materializes."""

    FULL = "full"
    ELIDE = "elide"

    @property
    def elides_data(self) -> bool:
        """True when beat/word payloads are geometry-only (no bytes)."""
        return self is DataPolicy.ELIDE


def default_data_policy() -> DataPolicy:
    """The policy selected by ``$REPRO_DATA_POLICY`` (default: FULL)."""
    raw = os.environ.get(DATA_POLICY_ENV)
    if raw is None:
        return DataPolicy.FULL
    return resolve_data_policy(raw)


def resolve_data_policy(
    value: Optional[Union["DataPolicy", str]],
) -> DataPolicy:
    """Coerce ``None`` / a policy name / a policy to a :class:`DataPolicy`.

    ``None`` resolves to the environment default, strings by enum value
    (case-insensitive).  Raises ``ValueError`` for unknown names so a typo'd
    ``REPRO_DATA_POLICY`` fails loudly instead of silently simulating the
    wrong thing.
    """
    if value is None:
        return default_data_policy()
    if isinstance(value, DataPolicy):
        return value
    name = value.strip().lower()
    try:
        return DataPolicy(name)
    except ValueError:
        raise ValueError(
            f"unknown data policy {value!r}; choose from "
            f"{[policy.value for policy in DataPolicy]}"
        ) from None
