"""Base class for cycle-driven hardware components.

Event-driven contract
---------------------
The engine is event-driven: a component's :meth:`tick` may return a *wake
hint* telling the engine when it next needs to run.  Between its wake
cycles a component is guaranteed not to be ticked, which is what lets
:meth:`~repro.sim.engine.Engine.run_until` fast-forward across globally
idle windows (DRAM-style latencies, reduction drains, scalar bookkeeping
stretches) without changing simulated behaviour.

The hint protocol is:

``None``
    Legacy behaviour — the component is ticked again on the very next
    cycle.  Components written before the event-driven engine keep working
    unmodified (they simply prevent idle skipping while registered).
``IDLE``
    The component has nothing time-driven pending; it sleeps until *poked*
    by activity on one of the queues returned by :meth:`wake_queues`.
an integer (or float) cycle number
    Sleep until that cycle unless poked earlier by queue activity.

Safety rule: a hint may be *earlier* than strictly necessary (a spurious
wake-up is a no-op tick, exactly what the legacy engine did every cycle)
but must never be *later* than the first cycle at which the component's
tick would have an observable effect.  Anything gated purely on simulated
time (a fixed latency maturing, a cooldown expiring) must be covered by the
returned hint; anything gated on communication is covered by subscribing to
the relevant queues via :meth:`wake_queues`.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Optional, Union

#: Wake hint meaning "sleep until poked by queue activity".
IDLE: float = math.inf

#: The type of a wake hint (``None`` = legacy tick-every-cycle).
WakeHint = Optional[Union[int, float]]


class Component(abc.ABC):
    """A hardware block that is evaluated on the simulated cycles it is awake.

    Subclasses implement :meth:`tick`, which models one clock cycle of
    behaviour.  Components must only communicate through
    :class:`~repro.sim.queue.DecoupledQueue` instances (or their own private
    state); direct method calls between components within a cycle would make
    results depend on tick ordering.

    A component may report whether it still has work pending through
    :meth:`busy`; the engine uses this to detect completion and deadlocks.
    """

    #: Slot index assigned by the owning engine (set at registration).
    _engine_slot: int = -1

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def tick(self, cycle: int) -> WakeHint:
        """Advance the component by one clock cycle.

        Returns the component's *wake hint* (see the module docstring):
        ``None`` to be ticked every cycle, :data:`IDLE` to sleep until queue
        activity, or the next cycle number at which it must run.
        """

    def wake_queues(self) -> Iterable:
        """Queues whose activity (push/pop) should wake this component.

        The engine subscribes the component to each returned
        :class:`~repro.sim.queue.DecoupledQueue` at registration time.  A
        component that returns a hint other than ``None`` from :meth:`tick`
        must list here every queue it reads from *or* writes to, so that it
        is re-woken when an item arrives or when back-pressure clears.
        The default returns nothing, which is always safe for legacy
        components (hint ``None`` keeps them ticked every cycle).
        """
        return ()

    def busy(self) -> bool:
        """Return True while the component has outstanding work.

        The default conservatively reports idle; components holding internal
        state (in-flight requests, partially packed beats) should override.
        """
        return False

    def reset(self) -> None:
        """Restore the component to its post-reset state (optional)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
