"""Base class for cycle-driven hardware components."""

from __future__ import annotations

import abc


class Component(abc.ABC):
    """A hardware block that is evaluated once per simulated cycle.

    Subclasses implement :meth:`tick`, which models one clock cycle of
    behaviour.  Components must only communicate through
    :class:`~repro.sim.queue.DecoupledQueue` instances (or their own private
    state); direct method calls between components within a cycle would make
    results depend on tick ordering.

    A component may report whether it still has work pending through
    :meth:`busy`; the engine uses this to detect completion and deadlocks.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def tick(self, cycle: int) -> None:
        """Advance the component by one clock cycle."""

    def busy(self) -> bool:
        """Return True while the component has outstanding work.

        The default conservatively reports idle; components holding internal
        state (in-flight requests, partially packed beats) should override.
        """
        return False

    def reset(self) -> None:
        """Restore the component to its post-reset state (optional)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
