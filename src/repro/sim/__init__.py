"""Event-driven cycle simulation kernel.

The kernel is deliberately small: components expose a :meth:`Component.tick`
method that models one clock cycle, and talk to each other exclusively
through :class:`DecoupledQueue` objects that model ready/valid handshaked
FIFOs.  Pushes performed during a cycle become visible to consumers at the
start of the *next* cycle (registered outputs), which makes simulation
results independent of the order in which components are ticked — the same
property that makes the RTL design composable.

On top of that two-phase contract the engine is event-driven: ``tick``
returns a *wake hint* (next cycle the component needs to run, or
:data:`IDLE` to sleep until queue activity), queues double as dirty/wake
lists, and :meth:`Engine.run_until` fast-forwards across globally idle
windows without changing simulated behaviour.  See ``docs/simulation.md``
for the full contract.
"""

from repro.sim.component import IDLE, Component, WakeHint
from repro.sim.queue import DecoupledQueue, LatencyPipe
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.datapath import (
    DatapathMode,
    default_datapath_mode,
    resolve_datapath_mode,
)
from repro.sim.engine import Engine
from repro.sim.policy import DataPolicy, default_data_policy, resolve_data_policy
from repro.sim.stats import Counter, StatsRegistry

__all__ = [
    "IDLE",
    "Component",
    "WakeHint",
    "DataPolicy",
    "DatapathMode",
    "DecoupledQueue",
    "LatencyPipe",
    "RoundRobinArbiter",
    "Engine",
    "Counter",
    "StatsRegistry",
    "default_data_policy",
    "default_datapath_mode",
    "resolve_data_policy",
    "resolve_datapath_mode",
]
