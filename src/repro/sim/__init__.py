"""Cycle-driven simulation kernel.

The kernel is deliberately small: components expose a :meth:`Component.tick`
method that is called once per cycle, and talk to each other exclusively
through :class:`DecoupledQueue` objects that model ready/valid handshaked
FIFOs.  Pushes performed during a cycle become visible to consumers at the
start of the *next* cycle (registered outputs), which makes simulation
results independent of the order in which components are ticked — the same
property that makes the RTL design composable.
"""

from repro.sim.component import Component
from repro.sim.queue import DecoupledQueue
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.engine import Engine
from repro.sim.stats import Counter, StatsRegistry

__all__ = [
    "Component",
    "DecoupledQueue",
    "RoundRobinArbiter",
    "Engine",
    "Counter",
    "StatsRegistry",
]
