"""Round-robin arbitration, as used between the index and element stages."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.utils.validation import check_positive


class RoundRobinArbiter:
    """Fair round-robin arbiter over a fixed number of requestors.

    The arbiter remembers the last granted requestor and, on each call to
    :meth:`grant`, starts searching from the next one, so a persistently
    requesting input cannot starve the others.  This mirrors the round-robin
    sharing of the word request ports between the index stage and the element
    stage of the indirect converters (paper §II-C).
    """

    def __init__(self, num_requestors: int) -> None:
        self.num_requestors = check_positive("num_requestors", num_requestors)
        self._last_grant = num_requestors - 1

    def grant(self, requesting: Sequence[bool]) -> Optional[int]:
        """Return the index of the granted requestor, or None if none request.

        Parameters
        ----------
        requesting:
            One boolean per requestor, True if it wants a grant this cycle.
        """
        if len(requesting) != self.num_requestors:
            raise ValueError(
                f"expected {self.num_requestors} request flags, got {len(requesting)}"
            )
        for offset in range(1, self.num_requestors + 1):
            candidate = (self._last_grant + offset) % self.num_requestors
            if requesting[candidate]:
                self._last_grant = candidate
                return candidate
        return None

    def reset(self) -> None:
        """Return the arbiter to its post-reset priority order."""
        self._last_grant = self.num_requestors - 1
