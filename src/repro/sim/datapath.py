"""Datapath representation of the simulated controller: scalar or batch.

The controller model can run its hot datapath in two representations that
produce bit-identical cycle counts and statistics:

``DatapathMode.BATCH`` (default)
    Struct-of-arrays: the word accesses of a burst live in flat parallel
    arrays (ports, word addresses, payload offsets, byte counts, shifts)
    computed by vectorized numpy plan kernels and held in lane batch
    buffers (:mod:`repro.controller.lanes`).  The converter pipes advance
    over plain integer arrays instead of dispatching per
    :class:`~repro.controller.plans.WordSlot` object.

``DatapathMode.SCALAR``
    The seed representation: one :class:`~repro.controller.plans.BeatPlan`
    object per beat holding one :class:`~repro.controller.plans.WordSlot`
    object per word access, produced by the generator planners in
    :mod:`repro.controller.planners` and interpreted one object at a time.

The two modes are *representations* of the same machine, not different
machines: issue order, regulator behaviour, arbitration, statistics and
every cycle count are identical (pinned by ``tests/test_datapath_parity.py``
and per grid point in ``benchmarks/bench_headline.py``).  Because results
never differ, the mode is an environment switch, not part of
:class:`~repro.system.config.SystemConfig` — cache fingerprints are
unaffected and FULL/ELIDE entries remain valid across modes.
"""

from __future__ import annotations

import contextlib
import enum
import os
from typing import Iterator, Optional, Union

#: Environment variable selecting the default mode (``batch`` or ``scalar``).
DATAPATH_ENV = "REPRO_SIM_DATAPATH"


class DatapathMode(enum.Enum):
    """How the controller datapath represents in-flight word accesses."""

    SCALAR = "scalar"
    BATCH = "batch"

    @property
    def is_batch(self) -> bool:
        """True when the struct-of-arrays lane kernels are in use."""
        return self is DatapathMode.BATCH


def default_datapath_mode() -> DatapathMode:
    """The mode selected by ``$REPRO_SIM_DATAPATH`` (default: BATCH)."""
    raw = os.environ.get(DATAPATH_ENV)
    if raw is None:
        return DatapathMode.BATCH
    return resolve_datapath_mode(raw)


def resolve_datapath_mode(
    value: Optional[Union["DatapathMode", str]],
) -> DatapathMode:
    """Coerce ``None`` / a mode name / a mode to a :class:`DatapathMode`.

    ``None`` resolves to the environment default, strings by enum value
    (case-insensitive).  Raises ``ValueError`` for unknown names so a typo'd
    ``REPRO_SIM_DATAPATH`` fails loudly instead of silently benchmarking the
    wrong representation.
    """
    if value is None:
        return default_datapath_mode()
    if isinstance(value, DatapathMode):
        return value
    name = value.strip().lower()
    try:
        return DatapathMode(name)
    except ValueError:
        raise ValueError(
            f"unknown datapath mode {value!r}; choose from "
            f"{[mode.value for mode in DatapathMode]}"
        ) from None


@contextlib.contextmanager
def datapath_override(
    mode: Optional[Union[DatapathMode, str]],
) -> Iterator[DatapathMode]:
    """Temporarily pin ``$REPRO_SIM_DATAPATH`` to ``mode``.

    This is the one sanctioned way to flip the datapath representation for a
    scoped block (the fuzzer's cross-mode oracle, the profile command's A/B
    runs): the previous environment value is restored on exit, even on
    error, so the override cannot leak into later runs in the same process.
    Yields the resolved :class:`DatapathMode`.
    """
    resolved = resolve_datapath_mode(mode)
    saved = os.environ.get(DATAPATH_ENV)
    os.environ[DATAPATH_ENV] = resolved.value
    try:
        yield resolved
    finally:
        if saved is None:
            os.environ.pop(DATAPATH_ENV, None)
        else:
            os.environ[DATAPATH_ENV] = saved
