"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that editable installs work in offline environments whose setuptools
lacks the ``wheel`` package required by PEP 660 editable builds
(``python setup.py develop`` as a fallback for ``pip install -e .``).
"""

from setuptools import setup

setup()
